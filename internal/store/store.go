// Package store is the durable result store of the experiment pipeline:
// an append-only, fsync'd, checksummed JSONL file holding one committed
// measurement cell per line, keyed by the runner's canonical cell key
// (benchmark, compiler options, machine fingerprint).
//
// Durability contract:
//
//   - Append writes one framed line — {"crc":<crc32>,"rec":{...}}\n — and
//     fsyncs before returning. A cell reported committed is on disk.
//   - Writes are append-only, so a crash can only tear the final line.
//     Open tolerates (and truncates away) such a partial tail: it was
//     never acknowledged, so dropping it loses nothing.
//   - Mid-file corruption — a complete line whose checksum or framing does
//     not verify, with valid data after it — cannot come from a torn
//     append. It is real damage and is reported as a structured
//     *ilperr.StoreError wrapping ilperr.ErrCorrupt; the valid prefix is
//     still returned so callers can decide to salvage.
//   - Compact rewrites the file through a temp file + atomic rename
//     (last-wins dedup by key), so a crash mid-compaction leaves either
//     the old file or the new one, never a mixture.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"ilp/internal/ilperr"
)

// Record is one committed measurement cell. Key is the canonical identity
// (the experiment runner uses its sim-cache key: benchmark, compiler
// options, schedule fingerprint, machine fingerprint); the named fields
// are provenance for humans and tools reading the store.
type Record struct {
	// Key is the canonical cell key; records with equal keys are the same
	// measurement and deduplicate last-wins.
	Key string `json:"key"`
	// Experiment is the experiment id that first committed the cell.
	Experiment string `json:"experiment,omitempty"`
	// Benchmark and Machine name the measured coordinate.
	Benchmark string `json:"benchmark,omitempty"`
	Machine   string `json:"machine,omitempty"`
	// Fingerprint is the machine's canonical fingerprint.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Payload is the serialized measurement (a sim.Result in the
	// experiment pipeline; the store does not interpret it).
	Payload json.RawMessage `json:"payload"`
}

// envelope frames one line: the CRC32 (IEEE) of the exact rec bytes.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Info reports what Decode observed beyond the records themselves.
type Info struct {
	// TruncatedTail is true when the input ended in a partial line (no
	// terminating newline) — the signature of a torn final append, which
	// is tolerated and dropped.
	TruncatedTail bool
	// ValidBytes is the byte offset just past the last valid record: the
	// prefix a repair should keep.
	ValidBytes int64
	// Lines is the number of valid records decoded.
	Lines int
}

// Decode reads framed records from r. It never panics on corrupt input:
// it returns the valid prefix of records along with an Info describing the
// recovery, and a *ilperr.StoreError (wrapping ilperr.ErrCorrupt) if a
// complete-but-invalid line was found before the end of input.
func Decode(r io.Reader) ([]Record, Info, error) {
	var (
		recs []Record
		info Info
		br   = bufio.NewReader(r)
	)
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return recs, info, &ilperr.StoreError{Op: "load", Line: lineNo, Err: err}
		}
		if len(line) == 0 {
			return recs, info, nil // clean EOF at a line boundary
		}
		if err == io.EOF {
			// Partial final line: a torn append, never acknowledged.
			info.TruncatedTail = true
			return recs, info, nil
		}
		rec, perr := decodeLine(line[:len(line)-1])
		if perr != nil {
			// A complete line that does not verify. If everything after it
			// is whitespace-free garbage too we still call it corruption:
			// only an unterminated *final* line is a tolerated torn tail.
			return recs, info, &ilperr.StoreError{
				Op: "load", Line: lineNo,
				Err: fmt.Errorf("%w: %v", ilperr.ErrCorrupt, perr),
			}
		}
		recs = append(recs, rec)
		info.Lines++
		info.ValidBytes += int64(len(line))
	}
}

// decodeLine verifies and unmarshals one framed record line (without its
// trailing newline).
func decodeLine(line []byte) (Record, error) {
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(&env); err != nil {
		return Record{}, fmt.Errorf("bad envelope: %v", err)
	}
	if dec.More() {
		return Record{}, errors.New("trailing data after envelope")
	}
	if len(env.Rec) == 0 {
		return Record{}, errors.New("missing rec field")
	}
	if got := crc32.ChecksumIEEE(env.Rec); got != env.CRC {
		return Record{}, fmt.Errorf("crc mismatch: have %08x, computed %08x", env.CRC, got)
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return Record{}, fmt.Errorf("bad record: %v", err)
	}
	if rec.Key == "" {
		return Record{}, errors.New("record has empty key")
	}
	return rec, nil
}

// encodeLine frames one record as its on-disk line (with newline).
func encodeLine(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(body), Rec: body})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// Load reads every valid record from the store file at path. A missing
// file is an empty store. Mid-file corruption returns the valid prefix
// plus the structured error.
func Load(path string) ([]Record, Info, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, Info{}, nil
		}
		return nil, Info{}, &ilperr.StoreError{Path: path, Op: "load", Err: err}
	}
	defer f.Close()
	recs, info, derr := Decode(f)
	var serr *ilperr.StoreError
	if errors.As(derr, &serr) {
		serr.Path = path
	}
	return recs, info, derr
}

// Store is an open result store. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	lock    *writerLock
	good    int64    // offset just past the last fsync'd record
	records []Record // every record on disk, append order
	byKey   map[string]int
	closed  bool
}

// Open opens (creating if necessary) the store at path, verifying its
// contents. The advisory writer lock beside the file is acquired first —
// a store held open by another live process fails with a *ilperr.StoreError
// wrapping ErrStoreLocked, while a dead owner's lock (a crashed worker) is
// broken by the PID liveness check. A torn final line from a crashed
// append is truncated away; mid-file corruption fails the open with a
// *ilperr.StoreError so no data is silently discarded (repair by hand or
// with a fresh path).
func Open(path string) (*Store, error) {
	lock, err := acquireLock(path)
	if err != nil {
		return nil, err
	}
	recs, info, err := Load(path)
	if err != nil {
		lock.release()
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lock.release()
		return nil, &ilperr.StoreError{Path: path, Op: "open", Err: err}
	}
	st := &Store{path: path, f: f, lock: lock, good: info.ValidBytes, records: recs, byKey: map[string]int{}}
	for i, rec := range recs {
		st.byKey[rec.Key] = i
	}
	if info.TruncatedTail {
		if err := st.rewind(); err != nil {
			f.Close()
			lock.release()
			return nil, err
		}
	} else if _, err := f.Seek(st.good, io.SeekStart); err != nil {
		f.Close()
		lock.release()
		return nil, &ilperr.StoreError{Path: path, Op: "open", Err: err}
	}
	return st, nil
}

// rewind truncates the file back to the last fsync'd record boundary and
// repositions the write offset there — crash repair on open, and best-
// effort cleanup after a failed append so a torn line is not followed by
// (otherwise unreachable) valid records.
func (s *Store) rewind() error {
	if err := s.f.Truncate(s.good); err != nil {
		return &ilperr.StoreError{Path: s.path, Op: "open", Err: err}
	}
	if _, err := s.f.Seek(s.good, io.SeekStart); err != nil {
		return &ilperr.StoreError{Path: s.path, Op: "open", Err: err}
	}
	return nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of records on disk (before key dedup).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Records returns the store's records deduplicated by key (last write
// wins), in first-appearance order. The slice is a copy.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.byKey))
	seen := map[string]bool{}
	for _, rec := range s.records {
		if seen[rec.Key] {
			continue
		}
		seen[rec.Key] = true
		out = append(out, s.records[s.byKey[rec.Key]])
	}
	return out
}

// Get returns the newest record for key.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.byKey[key]
	if !ok {
		return Record{}, false
	}
	return s.records[i], true
}

// Append durably commits one record: the line is written and fsync'd
// before Append returns. On an I/O error the file is rewound to the last
// committed boundary (best effort) and a transient *ilperr.StoreError is
// returned, so the caller's retry policy can try again without risking a
// torn line in the middle of the file.
func (s *Store) Append(rec Record) error {
	line, err := encodeLine(rec)
	if err != nil {
		// Not marked transient: an unmarshalable payload will not heal.
		return &ilperr.StoreError{Path: s.path, Op: "append", Err: fmt.Errorf("%w: %v", ilperr.ErrCorrupt, err)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return &ilperr.StoreError{Path: s.path, Op: "append", Err: os.ErrClosed}
	}
	if _, err := s.f.Write(line); err != nil {
		_ = s.rewind()
		return &ilperr.StoreError{Path: s.path, Op: "append", Err: err}
	}
	if err := s.f.Sync(); err != nil {
		_ = s.rewind()
		return &ilperr.StoreError{Path: s.path, Op: "append", Err: err}
	}
	s.good += int64(len(line))
	s.byKey[rec.Key] = len(s.records)
	s.records = append(s.records, rec)
	return nil
}

// Compact rewrites the store with duplicate keys collapsed (last wins,
// first-appearance order) through a temp file and an atomic rename. The
// store remains open and usable afterwards.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return &ilperr.StoreError{Path: s.path, Op: "compact", Err: os.ErrClosed}
	}
	deduped := make([]Record, 0, len(s.byKey))
	seen := map[string]bool{}
	for _, rec := range s.records {
		if seen[rec.Key] {
			continue
		}
		seen[rec.Key] = true
		deduped = append(deduped, s.records[s.byKey[rec.Key]])
	}

	tmpPath := s.path + ".compact.tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return &ilperr.StoreError{Path: s.path, Op: "compact", Err: err}
	}
	var size int64
	w := bufio.NewWriter(tmp)
	for _, rec := range deduped {
		line, err := encodeLine(rec)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return &ilperr.StoreError{Path: s.path, Op: "compact", Err: err}
		}
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return &ilperr.StoreError{Path: s.path, Op: "compact", Err: err}
		}
		size += int64(len(line))
	}
	if err := flushAndClose(w, tmp); err != nil {
		os.Remove(tmpPath)
		return &ilperr.StoreError{Path: s.path, Op: "compact", Err: err}
	}
	fsOp("sync-tmp")
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return &ilperr.StoreError{Path: s.path, Op: "compact", Err: err}
	}
	fsOp("rename")
	// The rename is only durable once the parent directory's entry is on
	// disk: without this fsync a power loss can roll the directory back to
	// the unlinked pre-compaction file, losing every record. The error is
	// noted but the handle swap below still runs, so the in-memory store
	// keeps tracking the file the directory now names.
	syncErr := syncDir(s.path)
	if herr := fsOp("sync-dir"); herr != nil && syncErr == nil {
		syncErr = herr
	}

	// Swap the handle to the new file and continue appending at its end.
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return &ilperr.StoreError{Path: s.path, Op: "compact", Err: err}
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		return &ilperr.StoreError{Path: s.path, Op: "compact", Err: err}
	}
	s.f.Close()
	s.f = nf
	s.good = size
	s.records = deduped
	s.byKey = map[string]int{}
	for i, rec := range deduped {
		s.byKey[rec.Key] = i
	}
	if syncErr != nil {
		return &ilperr.StoreError{Path: s.path, Op: "compact", Err: syncErr}
	}
	return nil
}

// flushAndClose flushes w, fsyncs and closes f.
func flushAndClose(w *bufio.Writer, f *os.File) error {
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// testHookFSOp, when non-nil, observes the durability-ordering steps of
// Compact in sequence ("sync-tmp", "rename", "sync-dir") and may inject a
// directory-fsync failure by returning an error for "sync-dir". Test seam
// only; nil in production.
var testHookFSOp func(op string) error

// fsOp reports one durability step to the test hook and returns its
// injected error, if any.
func fsOp(op string) error {
	if testHookFSOp != nil {
		return testHookFSOp(op)
	}
	return nil
}

// syncDir fsyncs the directory containing path so a rename survives a
// power loss. Filesystems that do not support directory fsync (EINVAL /
// ENOTSUP) are tolerated — on those, the rename is as durable as the
// platform allows — but a genuine I/O failure is reported so the caller
// does not acknowledge a compaction the disk may not hold.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Close releases the file handle and the writer lock. Further appends
// fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Close()
	s.lock.release()
	return err
}
