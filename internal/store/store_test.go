package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ilp/internal/ilperr"
)

func testRec(key string, n int) Record {
	payload, _ := json.Marshal(map[string]int{"cycles": n})
	return Record{
		Key: key, Experiment: "fig-test", Benchmark: "whet",
		Machine: "m", Fingerprint: "m:abc", Payload: payload,
	}
}

func openT(t *testing.T, path string) *Store {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestAppendLoadRoundTrip: records written are read back verbatim across
// a close/reopen.
func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st := openT(t, path)
	for i := 0; i < 5; i++ {
		if err := st.Append(testRec(fmt.Sprintf("k%d", i), i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st.Close()

	st2 := openT(t, path)
	recs := st2.Records()
	if len(recs) != 5 {
		t.Fatalf("reloaded %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("record %d key %q out of order", i, rec.Key)
		}
		var p map[string]int
		if err := json.Unmarshal(rec.Payload, &p); err != nil || p["cycles"] != i {
			t.Fatalf("record %d payload mangled: %s (%v)", i, rec.Payload, err)
		}
		if rec.Benchmark != "whet" || rec.Experiment != "fig-test" || rec.Fingerprint != "m:abc" {
			t.Fatalf("record %d provenance lost: %+v", i, rec)
		}
	}
}

// TestOpenMissingFileIsEmpty: a nonexistent path is an empty store that
// materializes on first append.
func TestOpenMissingFileIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.jsonl")
	st := openT(t, path)
	if st.Len() != 0 {
		t.Fatalf("fresh store has %d records", st.Len())
	}
	if err := st.Append(testRec("k", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("append did not materialize the file: %v", err)
	}
}

// TestTruncatedTailTolerated: a torn final line (crashed append) is
// dropped on open, the prefix survives, and appending afterwards produces
// a fully valid file.
func TestTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st := openT(t, path)
	for i := 0; i < 3; i++ {
		if err := st.Append(testRec(fmt.Sprintf("k%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the final line: chop off its last few bytes (newline included).
	data, _ := os.ReadFile(path)
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, info, err := Load(path)
	if err != nil {
		t.Fatalf("torn tail must not be an error: %v", err)
	}
	if !info.TruncatedTail || len(recs) != 2 {
		t.Fatalf("want 2 records + truncated tail, got %d (info %+v)", len(recs), info)
	}

	st2 := openT(t, path)
	if st2.Len() != 2 {
		t.Fatalf("reopened store has %d records, want 2", st2.Len())
	}
	if err := st2.Append(testRec("k9", 9)); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	recs, info, err = Load(path)
	if err != nil || info.TruncatedTail || len(recs) != 3 {
		t.Fatalf("append after repair left a bad file: %d recs, info %+v, err %v", len(recs), info, err)
	}
	if recs[2].Key != "k9" {
		t.Fatalf("appended record lost: %+v", recs)
	}
}

// TestMidFileCorruptionReported: a complete line with a flipped byte is
// real damage — Load returns the valid prefix plus a structured
// *ilperr.StoreError naming the line, and Open refuses the file rather
// than silently truncating committed data.
func TestMidFileCorruptionReported(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st := openT(t, path)
	for i := 0; i < 3; i++ {
		if err := st.Append(testRec(fmt.Sprintf("k%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a payload byte inside line 2 (keep it a complete line).
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x40
	if err := os.WriteFile(path, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, _, err := Load(path)
	var serr *ilperr.StoreError
	if !errors.As(err, &serr) {
		t.Fatalf("corruption reported as %T, want *ilperr.StoreError: %v", err, err)
	}
	if serr.Line != 2 || serr.Path != path || serr.Op != "load" {
		t.Fatalf("StoreError coordinates wrong: %+v", serr)
	}
	if !errors.Is(err, ilperr.ErrCorrupt) {
		t.Fatalf("corruption must match ErrCorrupt: %v", err)
	}
	if ilperr.IsTransient(err) {
		t.Fatal("corruption must classify permanent")
	}
	if len(recs) != 1 || recs[0].Key != "k0" {
		t.Fatalf("valid prefix not recovered: %+v", recs)
	}

	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a mid-file-corrupt store")
	}
}

// TestCRCCatchesPayloadTamper: same-shape JSON with altered content fails
// the checksum even though it parses.
func TestCRCCatchesPayloadTamper(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st := openT(t, path)
	if err := st.Append(testRec("k0", 7)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	data, _ := os.ReadFile(path)
	tampered := strings.Replace(string(data), `"cycles":7`, `"cycles":8`, 1)
	if tampered == string(data) {
		t.Fatal("test setup: payload substring not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Load(path)
	if !errors.Is(err, ilperr.ErrCorrupt) {
		t.Fatalf("tampered payload not caught by CRC: %v", err)
	}
}

// TestCompactDedupsLastWins: duplicate keys collapse to the newest record,
// in first-appearance order, through an atomic temp+rename; the store
// stays usable and no temp file is left behind.
func TestCompactDedupsLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st := openT(t, path)
	for _, kv := range []struct {
		k string
		v int
	}{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"b", 5}} {
		if err := st.Append(testRec(kv.k, kv.v)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 5 {
		t.Fatalf("raw length %d, want 5", st.Len())
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Fatalf("compacted length %d, want 3", st.Len())
	}
	if _, err := os.Stat(path + ".compact.tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Still usable after compaction.
	if err := st.Append(testRec("d", 6)); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	st.Close()

	recs, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"a", "b", "c", "d"}
	wantVal := map[string]int{"a": 3, "b": 5, "c": 4, "d": 6}
	if len(recs) != len(wantOrder) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantOrder))
	}
	for i, rec := range recs {
		var p map[string]int
		_ = json.Unmarshal(rec.Payload, &p)
		if rec.Key != wantOrder[i] || p["cycles"] != wantVal[rec.Key] {
			t.Fatalf("record %d = (%s, %d), want (%s, %d)", i, rec.Key, p["cycles"], wantOrder[i], wantVal[wantOrder[i]])
		}
	}
}

// TestGetNewest: Get returns the latest record for a key.
func TestGetNewest(t *testing.T) {
	st := openT(t, filepath.Join(t.TempDir(), "r.jsonl"))
	_ = st.Append(testRec("k", 1))
	_ = st.Append(testRec("k", 2))
	rec, ok := st.Get("k")
	if !ok {
		t.Fatal("Get missed an existing key")
	}
	var p map[string]int
	_ = json.Unmarshal(rec.Payload, &p)
	if p["cycles"] != 2 {
		t.Fatalf("Get returned stale record: %+v", p)
	}
	if _, ok := st.Get("absent"); ok {
		t.Fatal("Get invented a record")
	}
}

// TestConcurrentAppends: parallel appenders never tear lines (run under
// -race in make check / make chaos).
func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st := openT(t, path)
	var wg sync.WaitGroup
	const writers, per = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := st.Append(testRec(fmt.Sprintf("w%d-%d", w, i), i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st.Close()
	recs, info, err := Load(path)
	if err != nil || info.TruncatedTail {
		t.Fatalf("concurrent appends corrupted the file: err %v info %+v", err, info)
	}
	if len(recs) != writers*per {
		t.Fatalf("got %d records, want %d", len(recs), writers*per)
	}
}

// TestConcurrentAppendCompactGet is the daemon's shared-store shape: many
// clients appending and reading while a maintenance goroutine compacts.
// Every acknowledged append must survive every interleaved compaction
// (run under -race in make check / make chaos).
func TestConcurrentAppendCompactGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st := openT(t, path)
	var wg sync.WaitGroup
	const writers, per, compactions = 4, 20, 10
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := st.Append(testRec(key, i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if _, ok := st.Get(key); !ok {
					t.Errorf("acknowledged append %q not readable", key)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < compactions; i++ {
			if err := st.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := st.Compact(); err != nil {
		t.Fatalf("final compact: %v", err)
	}
	st.Close()
	recs, info, err := Load(path)
	if err != nil || info.TruncatedTail {
		t.Fatalf("interleaved compactions corrupted the file: err %v info %+v", err, info)
	}
	if len(recs) != writers*per {
		t.Fatalf("got %d records after compactions, want %d", len(recs), writers*per)
	}
}

// TestAppendAfterClose: fails with a structured error instead of a panic.
func TestAppendAfterClose(t *testing.T) {
	st := openT(t, filepath.Join(t.TempDir(), "r.jsonl"))
	st.Close()
	err := st.Append(testRec("k", 1))
	var serr *ilperr.StoreError
	if !errors.As(err, &serr) || serr.Op != "append" {
		t.Fatalf("append after close: %v", err)
	}
}

// TestUnmarshalablePayloadPermanent: a payload that cannot be framed
// (NaN) fails permanently — retrying cannot heal it.
func TestUnmarshalablePayloadPermanent(t *testing.T) {
	st := openT(t, filepath.Join(t.TempDir(), "r.jsonl"))
	err := st.Append(Record{Key: "k", Payload: json.RawMessage("\xff not json")})
	if err == nil {
		t.Fatal("invalid payload accepted")
	}
	if ilperr.IsTransient(err) {
		t.Fatalf("unencodable payload classified transient: %v", err)
	}
}
