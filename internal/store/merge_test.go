package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeShard builds a shard store holding the given records.
func writeShard(t *testing.T, path string, recs ...Record) {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func readBytes(t *testing.T, path string) []byte {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestMergeBasic: records of disjoint shards all land in the merged store,
// sorted by key, readable through the normal loader.
func TestMergeBasic(t *testing.T) {
	dir := t.TempDir()
	s1, s2 := filepath.Join(dir, "s1.jsonl"), filepath.Join(dir, "s2.jsonl")
	writeShard(t, s1, testRec("b", 2), testRec("d", 4))
	writeShard(t, s2, testRec("c", 3), testRec("a", 1))

	dst := filepath.Join(dir, "merged.jsonl")
	info, err := Merge(dst, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Sources != 2 || info.Records != 4 || info.Duplicates != 0 || info.Conflicts != 0 {
		t.Fatalf("unexpected merge info: %+v", info)
	}
	recs, _, err := Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if recs[i].Key != want {
			t.Fatalf("merged record %d has key %q, want %q (sorted)", i, recs[i].Key, want)
		}
	}
}

// TestMergeIdempotentAndOrderInvariant: merging the same cell set again —
// in any source order, with any partitioning, or re-merging over a
// previous output — produces byte-identical files.
func TestMergeIdempotentAndOrderInvariant(t *testing.T) {
	dir := t.TempDir()
	var all []Record
	for i := 0; i < 12; i++ {
		all = append(all, testRec(fmt.Sprintf("k%02d", i), i))
	}
	// Partitioning A: even/odd. Partitioning B: halves, reversed order.
	a1, a2 := filepath.Join(dir, "a1.jsonl"), filepath.Join(dir, "a2.jsonl")
	b1, b2 := filepath.Join(dir, "b1.jsonl"), filepath.Join(dir, "b2.jsonl")
	for i, rec := range all {
		switch {
		case i%2 == 0:
			writeShard(t, a1, rec)
		default:
			writeShard(t, a2, rec)
		}
	}
	writeShard(t, b1, all[6:]...)
	writeShard(t, b2, all[:6]...)

	da, db := filepath.Join(dir, "da.jsonl"), filepath.Join(dir, "db.jsonl")
	if _, err := Merge(da, a1, a2); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(db, b2, b1); err != nil {
		t.Fatal(err)
	}
	ba, bb := readBytes(t, da), readBytes(t, db)
	if !bytes.Equal(ba, bb) {
		t.Fatal("merges of the same cell set under different partitionings differ")
	}
	// Re-merge over the previous output: idempotent.
	if _, err := Merge(da, da); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBytes(t, da), ba) {
		t.Fatal("re-merging a merged store changed its bytes")
	}
}

// TestMergeDuplicatesResolveDeterministically: equal keys collapse; when
// payloads genuinely differ the winner is chosen by payload fingerprint,
// not source order, and the conflict is counted.
func TestMergeDuplicatesResolveDeterministically(t *testing.T) {
	dir := t.TempDir()
	recA := testRec("dup", 1)
	recB := testRec("dup", 2) // same key, different payload
	s1, s2 := filepath.Join(dir, "s1.jsonl"), filepath.Join(dir, "s2.jsonl")
	s3, s4 := filepath.Join(dir, "s3.jsonl"), filepath.Join(dir, "s4.jsonl")
	writeShard(t, s1, recA)
	writeShard(t, s2, recB)
	writeShard(t, s3, recB)
	writeShard(t, s4, recA)

	d1, d2 := filepath.Join(dir, "d1.jsonl"), filepath.Join(dir, "d2.jsonl")
	i1, err := Merge(d1, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := Merge(d2, s3, s4)
	if err != nil {
		t.Fatal(err)
	}
	if i1.Duplicates != 1 || i1.Conflicts != 1 || i2.Conflicts != 1 {
		t.Fatalf("conflict accounting wrong: %+v / %+v", i1, i2)
	}
	if !bytes.Equal(readBytes(t, d1), readBytes(t, d2)) {
		t.Fatal("conflicting duplicate resolved differently under swapped source order")
	}

	// Identical duplicates are counted but are not conflicts.
	s5 := filepath.Join(dir, "s5.jsonl")
	writeShard(t, s5, recA)
	d3 := filepath.Join(dir, "d3.jsonl")
	i3, err := Merge(d3, s1, s5)
	if err != nil {
		t.Fatal(err)
	}
	if i3.Duplicates != 1 || i3.Conflicts != 0 {
		t.Fatalf("identical duplicate accounting wrong: %+v", i3)
	}
}

// TestMergeToleratesTornTailAndMissingSource: a SIGKILLed worker's torn
// final append is dropped (it was never acknowledged) and a shard that
// never committed anything (no file) reads as empty.
func TestMergeToleratesTornTailAndMissingSource(t *testing.T) {
	dir := t.TempDir()
	s1 := filepath.Join(dir, "s1.jsonl")
	writeShard(t, s1, testRec("a", 1), testRec("b", 2))
	// Tear the tail: append a partial line with no newline.
	f, err := os.OpenFile(s1, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":123,"rec":{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dst := filepath.Join(dir, "m.jsonl")
	info, err := Merge(dst, s1, filepath.Join(dir, "never-written.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTails != 1 || info.Sources != 2 || info.Records != 2 {
		t.Fatalf("unexpected info for torn+missing sources: %+v", info)
	}
	recs, _, err := Load(dst)
	if err != nil || len(recs) != 2 {
		t.Fatalf("merged store unreadable or wrong size: %d recs, %v", len(recs), err)
	}
}

// TestMergeOutputOpensAndResumes: the merged file round-trips through
// Open/Records with payloads intact — it is a first-class store.
func TestMergeOutputOpensAndResumes(t *testing.T) {
	dir := t.TempDir()
	s1 := filepath.Join(dir, "s1.jsonl")
	writeShard(t, s1, testRec("x", 42))
	dst := filepath.Join(dir, "m.jsonl")
	if _, err := Merge(dst, s1); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec, ok := st.Get("x")
	if !ok {
		t.Fatal("merged record missing through Open")
	}
	var p map[string]int
	if err := json.Unmarshal(rec.Payload, &p); err != nil || p["cycles"] != 42 {
		t.Fatalf("payload mangled through merge: %s (%v)", rec.Payload, err)
	}
	// A merged store keeps accepting appends (the resume render path).
	if err := st.Append(testRec("y", 7)); err != nil {
		t.Fatal(err)
	}
}
