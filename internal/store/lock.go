package store

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"ilp/internal/ilperr"
)

// ErrStoreLocked reports that a store is already open for writing by a
// live process. It is wrapped in a *ilperr.StoreError, which classifies
// transient — the holder may release the lock, so a retry policy (the
// sweep fabric's shard reassignment, for one) is allowed to try again.
var ErrStoreLocked = errors.New("store locked for writing by a live process")

// lockNonce distinguishes lock handles within one process, so a handle
// whose lock was (legitimately) broken by a same-process reopen cannot
// remove the successor's lock file on Close.
var lockNonce atomic.Int64

// writerLock is the advisory writer lock beside a store file: a lock file
// at <path>.lock holding "<pid> <nonce>\n". Two *processes* can therefore
// never append to the same store — the second Open fails with
// ErrStoreLocked — while a lock whose owner died (the fabric's SIGKILLed
// shard workers) is detected by the PID liveness probe and broken.
type writerLock struct {
	path  string
	nonce int64
}

// lockPath is the lock file guarding the store at path.
func lockPath(path string) string { return path + ".lock" }

// acquireLock takes the advisory writer lock for the store at path.
// A held lock is broken when its owner is dead (crashed worker) or is
// this very process (a crash-simulating reopen; in-process exclusion is
// the Store mutex's job, cross-process exclusion is this lock's).
func acquireLock(path string) (*writerLock, error) {
	lp := lockPath(path)
	nonce := lockNonce.Add(1)
	// Two tries: one against a possibly stale lock, one after breaking it.
	// Losing the O_EXCL race twice means live contenders; report locked.
	for try := 0; try < 2; try++ {
		f, err := os.OpenFile(lp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d %d\n", os.Getpid(), nonce)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(lp)
				return nil, &ilperr.StoreError{Path: path, Op: "lock", Err: werr}
			}
			return &writerLock{path: lp, nonce: nonce}, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, &ilperr.StoreError{Path: path, Op: "lock", Err: err}
		}
		pid, _, perr := readLock(lp)
		if perr == nil && pid != os.Getpid() && pidAlive(pid) {
			return nil, &ilperr.StoreError{
				Path: path, Op: "lock",
				Err: fmt.Errorf("%w: held by pid %d (%s)", ErrStoreLocked, pid, lp),
			}
		}
		// Stale (dead owner, unreadable content, or our own pid from an
		// abandoned handle): break it and race for the replacement.
		os.Remove(lp)
	}
	return nil, &ilperr.StoreError{
		Path: path, Op: "lock",
		Err: fmt.Errorf("%w: lost the acquisition race twice (%s)", ErrStoreLocked, lp),
	}
}

// release removes the lock file, but only while this handle still owns it
// — a successor that legitimately broke the lock must not lose its own.
func (l *writerLock) release() {
	if l == nil {
		return
	}
	pid, nonce, err := readLock(l.path)
	if err != nil || pid != os.Getpid() || nonce != l.nonce {
		return
	}
	os.Remove(l.path)
}

// readLock parses a lock file's "<pid> <nonce>" content.
func readLock(lp string) (pid int, nonce int64, err error) {
	buf, err := os.ReadFile(lp)
	if err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(string(buf))
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("malformed lock file %s: %q", lp, buf)
	}
	pid, err = strconv.Atoi(fields[0])
	if err != nil {
		return 0, 0, err
	}
	nonce, err = strconv.ParseInt(fields[1], 10, 64)
	return pid, nonce, err
}

// pidAlive reports whether pid names a live process. Signal 0 probes
// without delivering; EPERM means "alive but not ours", which still
// counts as a live owner.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}
