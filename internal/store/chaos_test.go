package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ilp/internal/ilperr"
)

// chaosSchedules returns the number of randomized damage schedules to run.
// The default keeps tier-1 fast; `make chaos` raises it via
// ILP_STORE_CHAOS_SCHEDULES.
func chaosSchedules(t *testing.T, def int) int {
	if s := os.Getenv("ILP_STORE_CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ILP_STORE_CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	return def
}

// TestCompactDurabilityOrder pins the rename+fsync sequence of Compact:
// the temp file is fsync'd before the atomic rename, and the parent
// directory is fsync'd after it — the order that guarantees a power loss
// leaves either the old file or the complete new one, and that the
// directory entry naming the new one survives.
func TestCompactDurabilityOrder(t *testing.T) {
	var ops []string
	testHookFSOp = func(op string) error {
		ops = append(ops, op)
		return nil
	}
	defer func() { testHookFSOp = nil }()

	path := filepath.Join(t.TempDir(), "s.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		if err := st.Append(testRec("dup", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	want := []string{"sync-tmp", "rename", "sync-dir"}
	if len(ops) != len(want) {
		t.Fatalf("compact durability steps %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("compact durability steps %v, want %v (step %d out of order)", ops, want, i)
		}
	}
}

// TestCompactDirSyncFailure: a failed parent-directory fsync must surface
// as a *ilperr.StoreError — the compaction's durability is unproven — but
// the store must keep tracking the renamed file, so later appends land in
// the file the directory now names rather than the unlinked old inode.
func TestCompactDirSyncFailure(t *testing.T) {
	injected := errors.New("injected dir-fsync failure")
	testHookFSOp = func(op string) error {
		if op == "sync-dir" {
			return injected
		}
		return nil
	}
	defer func() { testHookFSOp = nil }()

	path := filepath.Join(t.TempDir(), "s.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		if err := st.Append(testRec("dup", i)); err != nil {
			t.Fatal(err)
		}
	}
	cerr := st.Compact()
	var serr *ilperr.StoreError
	if !errors.As(cerr, &serr) || !errors.Is(cerr, injected) {
		t.Fatalf("dir-fsync failure reported as %T (%v), want StoreError wrapping the injected error", cerr, cerr)
	}
	// The handle still tracks the compacted file: an append after the
	// failed fsync must be visible to an independent reader of the path.
	testHookFSOp = nil
	if err := st.Append(testRec("post", 9)); err != nil {
		t.Fatalf("append after failed dir fsync: %v", err)
	}
	recs, _, err := Load(path)
	if err != nil {
		t.Fatalf("load after compact+append: %v", err)
	}
	if len(recs) != 2 || recs[0].Key != "dup" || recs[1].Key != "post" {
		t.Fatalf("compacted file lost the post-compaction append: %+v", recs)
	}
}

// TestChaosDamageSchedules subjects the store to randomized damage — byte
// flips, truncations at arbitrary offsets, inserted garbage lines, deleted
// newlines — and asserts the durability contract on every schedule:
//
//   - Load never panics;
//   - every record Load returns is one that was actually appended, with
//     its payload intact (the CRC admits no mangled record);
//   - damage confined to the final, unterminated line is repaired by Open
//     and the store accepts appends afterwards;
//   - any other damage surfaces as a structured *ilperr.StoreError
//     matching ErrCorrupt, never as silent data loss of the valid prefix
//     preceding the damage.
func TestChaosDamageSchedules(t *testing.T) {
	schedules := chaosSchedules(t, 40)
	dir := t.TempDir()
	for sched := 0; sched < schedules; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("seed%d", sched), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(sched)))
			path := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", sched))

			// Build a store with 1..12 records and remember the truth.
			n := 1 + rng.Intn(12)
			truth := make(map[string]int, n)
			st, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("k%d", i)
				if err := st.Append(testRec(key, i)); err != nil {
					t.Fatal(err)
				}
				truth[key] = i
			}
			st.Close()

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Apply 1..3 random damage operations.
			ops := 1 + rng.Intn(3)
			for o := 0; o < ops; o++ {
				if len(data) == 0 {
					break
				}
				switch rng.Intn(4) {
				case 0: // flip a byte
					data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
				case 1: // truncate at an arbitrary offset
					data = data[:rng.Intn(len(data)+1)]
				case 2: // insert a garbage line somewhere
					at := rng.Intn(len(data) + 1)
					garbage := []byte("{\"not\":\"an envelope\"}\n")
					data = append(data[:at:at], append(garbage, data[at:]...)...)
				case 3: // delete a byte (often a newline, merging lines)
					at := rng.Intn(len(data))
					data = append(data[:at:at], data[at+1:]...)
				}
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			// Contract: Load never panics, never invents records.
			recs, info, lerr := Load(path)
			for _, rec := range recs {
				want, ok := truth[rec.Key]
				if !ok {
					t.Fatalf("Load invented record %q", rec.Key)
				}
				var p map[string]int
				if err := json.Unmarshal(rec.Payload, &p); err != nil || p["cycles"] != want {
					t.Fatalf("record %q payload mangled past the CRC: %s", rec.Key, rec.Payload)
				}
			}
			if lerr != nil {
				var serr *ilperr.StoreError
				if !errors.As(lerr, &serr) || !errors.Is(lerr, ilperr.ErrCorrupt) {
					t.Fatalf("damage reported as %T (%v), want StoreError/ErrCorrupt", lerr, lerr)
				}
				return // mid-file corruption: Open would refuse; contract held.
			}

			// No corruption error: only tail damage (or none). Open must
			// repair and accept appends.
			st2, err := Open(path)
			if err != nil {
				t.Fatalf("Open after tail-only damage (info %+v): %v", info, err)
			}
			if err := st2.Append(testRec("post", 999)); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			st2.Close()
			recs2, info2, err := Load(path)
			if err != nil || info2.TruncatedTail {
				t.Fatalf("repair left a bad file: %v (info %+v)", err, info2)
			}
			if len(recs2) != len(recs)+1 || recs2[len(recs2)-1].Key != "post" {
				t.Fatalf("post-repair append lost: %d records", len(recs2))
			}
		})
	}
}
