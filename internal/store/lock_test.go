package store

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ilp/internal/ilperr"
)

// TestMain lets this test binary double as the lock-holding second process
// of TestLockTwoProcesses: re-exec'd with ILP_STORE_LOCK_HELPER set, it
// opens the named store, prints "locked", and holds it until stdin closes.
func TestMain(m *testing.M) {
	if path := os.Getenv("ILP_STORE_LOCK_HELPER"); path != "" {
		os.Exit(lockHelperMain(path))
	}
	os.Exit(m.Run())
}

func lockHelperMain(path string) int {
	st, err := Open(path)
	if err != nil {
		if errors.Is(err, ErrStoreLocked) {
			fmt.Println("locked-out")
			return 3
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer st.Close()
	fmt.Println("holding")
	// Hold the lock until the parent closes our stdin.
	buf := make([]byte, 1)
	os.Stdin.Read(buf)
	return 0
}

// TestLockTwoProcesses is the cross-process regression test of the
// advisory writer lock: while a second real process holds a store open,
// this process's Open must fail with ErrStoreLocked; once the holder
// exits, Open must succeed.
func TestLockTwoProcesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.jsonl")

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "ILP_STORE_LOCK_HELPER="+path)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		stdin.Close()
		cmd.Wait()
	}()

	// Wait for the helper to report it holds the lock.
	line := make([]byte, 16)
	n, err := stdout.Read(line)
	if err != nil || !strings.HasPrefix(string(line[:n]), "holding") {
		t.Fatalf("helper did not take the lock: %q, %v", line[:n], err)
	}

	_, err = Open(path)
	if !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("Open against a live foreign holder: want ErrStoreLocked, got %v", err)
	}
	var serr *ilperr.StoreError
	if !errors.As(err, &serr) || serr.Op != "lock" {
		t.Fatalf("lock failure not a structured StoreError with Op=lock: %v", err)
	}
	if !ilperr.IsTransient(err) {
		t.Fatalf("ErrStoreLocked should classify transient (the holder can exit): %v", err)
	}

	// Release the helper and make sure the lock frees with it.
	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper exit: %v", err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open after the holder exited: %v", err)
	}
	st.Close()
	if _, err := os.Stat(lockPath(path)); !os.IsNotExist(err) {
		t.Fatalf("lock file survives Close: %v", err)
	}
}

// TestLockBrokenForDeadOwner: a lock file left by a dead PID (the crashed
// worker case) is broken by the liveness check instead of wedging the
// store forever.
func TestLockBrokenForDeadOwner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.jsonl")
	// Spawn a short-lived process and let it exit, so its PID is known dead
	// (modulo recycling, which a fresh short-lived PID makes unlikely).
	cmd := exec.Command(os.Args[0], "-test.run=TestNothingZZZ")
	cmd.Env = append(os.Environ(), "GOTRACEBACK=none")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadPid := cmd.Process.Pid
	cmd.Wait()
	if err := os.WriteFile(lockPath(path), []byte(fmt.Sprintf("%d 1\n", deadPid)), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open should break a dead owner's lock: %v", err)
	}
	st.Close()
}

// TestLockMalformedIsStale: unparsable lock content (a crash between
// creating and writing the lock file) is treated as stale, not fatal.
func TestLockMalformedIsStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbled.jsonl")
	if err := os.WriteFile(lockPath(path), []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open over malformed lock: %v", err)
	}
	st.Close()
}

// TestLockSamePidReentrant: a same-process reopen (how the chaos suites
// simulate crash-and-recover without exec) breaks its own abandoned lock,
// and the abandoned handle's Close cannot remove the successor's lock.
func TestLockSamePidReentrant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "self.jsonl")
	st1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Abandon st1 (no Close — a simulated crash) and reopen.
	st2, err := Open(path)
	if err != nil {
		t.Fatalf("same-pid reopen: %v", err)
	}
	if err := st2.Append(testRec("k", 1)); err != nil {
		t.Fatalf("append on the successor handle: %v", err)
	}
	// The stale handle's Close must not free the successor's lock.
	st1.Close()
	if _, err := os.Stat(lockPath(path)); err != nil {
		t.Fatalf("abandoned handle's Close removed the successor's lock: %v", err)
	}
	st2.Close()
	if _, err := os.Stat(lockPath(path)); !os.IsNotExist(err) {
		t.Fatalf("successor's Close left the lock behind: %v", err)
	}
}

// TestLockReleaseOnCloseAllowsReopen: the ordinary close/reopen cycle
// (resume) is unaffected by the lock.
func TestLockReleaseOnCloseAllowsReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cycle.jsonl")
	for i := 0; i < 3; i++ {
		st, err := Open(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := st.Append(testRec(fmt.Sprintf("k%d", i), i)); err != nil {
			t.Fatalf("cycle %d append: %v", i, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", i, err)
		}
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 3 {
		t.Fatalf("store holds %d records after 3 locked cycles, want 3", st.Len())
	}
}

// TestLockContentionWindow: many goroutines of one process racing Open on
// the same fresh path all succeed eventually or fail with ErrStoreLocked —
// never corrupt state — because same-pid locks are re-entrant and the
// Store mutex guards in-process use. This is a shape test for the
// advisory semantics, not an exclusion guarantee within a process.
func TestLockContentionWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.jsonl")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			st, err := Open(path)
			if err != nil {
				done <- err
				return
			}
			time.Sleep(time.Millisecond)
			done <- st.Close()
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil && !errors.Is(err, ErrStoreLocked) {
			t.Fatalf("racing Open %d: %v", i, err)
		}
	}
}
