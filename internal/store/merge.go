// Multi-store merge: the crash-safe join of the sweep fabric's per-shard
// stores into one canonical result store.
//
// Idempotence and determinism contract:
//
//   - The merged file is a pure function of the union of the sources'
//     records: re-running Merge over the same sources — or over sources
//     that partition the same cell set differently — produces the same
//     bytes. Records are sorted by key, and duplicate keys are resolved
//     deterministically by payload fingerprint (CRC32, then the raw
//     bytes), never by source order or mtime.
//   - The output is written through a temp file, fsync'd, renamed into
//     place atomically, and the parent directory is fsync'd — a crash
//     mid-merge leaves either the previous file or the complete new one,
//     never a mixture, so the merge can simply be re-run.
//   - A torn final line in a source (the signature of a SIGKILLed worker
//     mid-append) is tolerated and dropped, exactly as Open would; the
//     cell was never acknowledged. Mid-file corruption is real damage and
//     fails the merge.
package store

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"ilp/internal/ilperr"
)

// MergeInfo reports what a Merge did.
type MergeInfo struct {
	// Sources is how many source stores were read (missing files count as
	// empty sources — a shard whose worker never committed a cell).
	Sources int
	// Records is the number of records in the merged output.
	Records int
	// Duplicates counts input records dropped because another record had
	// the same key.
	Duplicates int
	// Conflicts counts duplicate keys whose payloads differed — expected
	// to be zero when the cells come from a deterministic simulator, but
	// resolved (by smallest payload fingerprint) rather than fatal, so a
	// merge never wedges on a disagreement it can report.
	Conflicts int
	// TornTails counts sources whose torn final line was dropped.
	TornTails int
}

// Merge joins the records of the source stores into a single store file
// at dst, deduplicated by key and sorted, written atomically. dst must
// not be open in this or any other live process: Merge takes (and
// releases) the advisory writer lock beside dst.
func Merge(dst string, srcs ...string) (MergeInfo, error) {
	lock, err := acquireLock(dst)
	if err != nil {
		return MergeInfo{}, err
	}
	defer lock.release()

	var info MergeInfo
	best := map[string]Record{} // key -> winning record
	for _, src := range srcs {
		recs, finfo, err := Load(src)
		if err != nil {
			return info, fmt.Errorf("merging %s: %w", src, err)
		}
		info.Sources++
		if finfo.TruncatedTail {
			info.TornTails++
		}
		for _, rec := range recs {
			prev, dup := best[rec.Key]
			if !dup {
				best[rec.Key] = rec
				continue
			}
			info.Duplicates++
			switch cmp := comparePayloads(rec, prev); {
			case cmp == 0:
				// Identical duplicate (the common case: two shards measured
				// the same cell of a deterministic simulator). Keep prev.
			case cmp < 0:
				info.Conflicts++
				best[rec.Key] = rec
			default:
				info.Conflicts++
			}
		}
	}

	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	info.Records = len(keys)

	tmpPath := dst + ".merge.tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return info, &ilperr.StoreError{Path: dst, Op: "merge", Err: err}
	}
	w := bufio.NewWriter(tmp)
	for _, k := range keys {
		line, err := encodeLine(best[k])
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return info, &ilperr.StoreError{Path: dst, Op: "merge", Err: err}
		}
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return info, &ilperr.StoreError{Path: dst, Op: "merge", Err: err}
		}
	}
	if err := flushAndClose(w, tmp); err != nil {
		os.Remove(tmpPath)
		return info, &ilperr.StoreError{Path: dst, Op: "merge", Err: err}
	}
	if err := os.Rename(tmpPath, dst); err != nil {
		os.Remove(tmpPath)
		return info, &ilperr.StoreError{Path: dst, Op: "merge", Err: err}
	}
	// Same durability rule as Compact: the rename is only on disk once the
	// directory entry is.
	if err := syncDir(dst); err != nil {
		return info, &ilperr.StoreError{Path: dst, Op: "merge", Err: err}
	}
	return info, nil
}

// comparePayloads orders two records for deterministic duplicate
// resolution: by payload CRC32 fingerprint first (cheap), then by the raw
// payload bytes (total). Returns <0, 0, >0 like bytes.Compare; 0 means
// the payloads are identical.
func comparePayloads(a, b Record) int {
	ca, cb := crc32.ChecksumIEEE(a.Payload), crc32.ChecksumIEEE(b.Payload)
	switch {
	case ca < cb:
		return -1
	case ca > cb:
		return 1
	}
	return bytes.Compare(a.Payload, b.Payload)
}
