package store

import (
	"bytes"
	"errors"
	"testing"

	"ilp/internal/ilperr"
)

// FuzzDecode feeds arbitrary bytes to the store loader. The contract under
// fuzzing: never panic, and either decode cleanly, tolerate a torn tail,
// or report structured corruption (*ilperr.StoreError matching ErrCorrupt)
// while still returning the valid prefix that precedes the damage.
func FuzzDecode(f *testing.F) {
	// Seed with a valid two-record store plus characteristic damage.
	valid, err := encodeLine(testRec("k0", 1))
	if err != nil {
		f.Fatal(err)
	}
	valid2, err := encodeLine(testRec("k1", 2))
	if err != nil {
		f.Fatal(err)
	}
	whole := append(append([]byte{}, valid...), valid2...)
	f.Add(whole)
	f.Add(whole[:len(whole)-5])                            // torn tail
	f.Add([]byte("{\"crc\":1,\"rec\":{\"key\":\"x\"}}\n")) // bad CRC
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{})
	f.Add([]byte("{\"crc\":0,\"rec\":null}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, info, derr := Decode(bytes.NewReader(data))
		if derr != nil {
			var serr *ilperr.StoreError
			if !errors.As(derr, &serr) {
				t.Fatalf("Decode error is %T, want *ilperr.StoreError: %v", derr, derr)
			}
			if !errors.Is(derr, ilperr.ErrCorrupt) {
				t.Fatalf("Decode error does not match ErrCorrupt: %v", derr)
			}
			if serr.Line < 1 || serr.Line > info.Lines+1 {
				t.Fatalf("corrupt line %d out of range (info %+v)", serr.Line, info)
			}
		}
		// The valid prefix must itself re-verify: ValidBytes delimits
		// bytes that decode cleanly to exactly the records returned.
		if info.ValidBytes < 0 || info.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d out of range [0,%d]", info.ValidBytes, len(data))
		}
		again, info2, err2 := Decode(bytes.NewReader(data[:info.ValidBytes]))
		if err2 != nil || info2.TruncatedTail {
			t.Fatalf("valid prefix does not re-decode cleanly: %v (info %+v)", err2, info2)
		}
		if len(again) != len(recs) {
			t.Fatalf("valid prefix yields %d records, first pass yielded %d", len(again), len(recs))
		}
		for i := range again {
			if again[i].Key != recs[i].Key || !bytes.Equal(again[i].Payload, recs[i].Payload) {
				t.Fatalf("record %d differs between passes", i)
			}
		}
	})
}
