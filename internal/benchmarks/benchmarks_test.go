package benchmarks

import (
	"testing"

	"ilp/internal/compiler"
	"ilp/internal/isa"
	"ilp/internal/lang/interp"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
	"ilp/internal/sim"
)

func TestRegistry(t *testing.T) {
	bs := All()
	if len(bs) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(bs))
	}
	want := []string{"ccom", "grr", "linpack", "livermore", "met", "stanford", "whet", "yacc"}
	for i, name := range want {
		if bs[i].Name != name {
			t.Errorf("benchmark %d = %s, want %s", i, bs[i].Name, name)
		}
		if bs[i].Source == "" || bs[i].Description == "" {
			t.Errorf("%s: missing source or description", name)
		}
	}
	if _, err := ByName("linpack"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
	lp, _ := ByName("linpack")
	if lp.DefaultUnroll != 4 || !lp.Numeric {
		t.Error("linpack metadata wrong")
	}
}

// reference runs each benchmark in the interpreter once, caching results.
var refCache = map[string][]isa.Value{}

func reference(t *testing.T, b Benchmark) []isa.Value {
	t.Helper()
	if out, ok := refCache[b.Name]; ok {
		return out
	}
	p, err := parser.Parse(b.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", b.Name, err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("%s: sem: %v", b.Name, err)
	}
	out, err := interp.Run(info)
	if err != nil {
		t.Fatalf("%s: interp: %v", b.Name, err)
	}
	refCache[b.Name] = out
	return out
}

// TestBenchmarksAgainstInterpreter is the suite's ground-truth check: every
// benchmark, compiled at O0 and O4 and simulated, must print exactly what
// the reference interpreter prints.
func TestBenchmarksAgainstInterpreter(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want := reference(t, b)
			if len(want) == 0 {
				t.Fatalf("%s prints nothing; checksums missing", b.Name)
			}
			for _, lvl := range []compiler.Level{compiler.O0, compiler.O4} {
				c, err := compiler.Compile(b.Source, compiler.Options{Machine: machine.Base(), Level: lvl})
				if err != nil {
					t.Fatalf("compile %v: %v", lvl, err)
				}
				r, err := sim.Run(c.Prog, sim.Options{Machine: machine.Base()})
				if err != nil {
					t.Fatalf("sim %v: %v", lvl, err)
				}
				if len(r.Output) != len(want) {
					t.Fatalf("%v: %d outputs, want %d\ngot %v\nwant %v", lvl, len(r.Output), len(want), r.Output, want)
				}
				for i := range want {
					if !r.Output[i].Equal(want[i]) {
						t.Errorf("%v: output[%d] = %v, want %v", lvl, i, r.Output[i], want[i])
					}
				}
			}
		})
	}
}

// TestBenchmarksUnrolled checks the unrolled configurations used by the
// Figure 4-6 experiment on the numeric benchmarks.
func TestBenchmarksUnrolled(t *testing.T) {
	for _, name := range []string{"linpack", "livermore"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want := reference(t, b)
		for _, careful := range []bool{false, true} {
			c, err := compiler.Compile(b.Source, compiler.Options{
				Machine: machine.Base(), Level: compiler.O4, Unroll: 4, Careful: careful,
			})
			if err != nil {
				t.Fatalf("%s careful=%v: %v", name, careful, err)
			}
			if c.UnrolledLoops == 0 {
				t.Errorf("%s: no loops unrolled", name)
			}
			r, err := sim.Run(c.Prog, sim.Options{Machine: machine.Base()})
			if err != nil {
				t.Fatalf("%s careful=%v: %v", name, careful, err)
			}
			if len(r.Output) != len(want) {
				t.Fatalf("%s careful=%v: %d outputs, want %d", name, careful, len(r.Output), len(want))
			}
			for i := range want {
				// Careful mode reassociates float reductions; integers
				// must stay exact, floats within tolerance.
				if !r.Output[i].ApproxEqual(want[i], 1e-6) {
					t.Errorf("%s careful=%v: output[%d] = %v, want %v", name, careful, i, r.Output[i], want[i])
				}
			}
		}
	}
}

// TestBenchmarkSizes keeps the suite simulable: each benchmark should run
// in a sane dynamic instruction budget on the base machine.
func TestBenchmarkSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("sizes covered by the full test")
	}
	for _, b := range All() {
		c, err := compiler.Compile(b.Source, compiler.Options{Machine: machine.Base(), Level: compiler.O4})
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(c.Prog, sim.Options{Machine: machine.Base()})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-10s %9d instructions, %d outputs", b.Name, r.Instructions, len(r.Output))
		if r.Instructions < 20000 {
			t.Errorf("%s: only %d instructions; too small to be representative", b.Name, r.Instructions)
		}
		if r.Instructions > 60_000_000 {
			t.Errorf("%s: %d instructions; too slow for the experiment sweep", b.Name, r.Instructions)
		}
	}
}

// TestSuiteInstructionMixRealistic guards the suite's character: across
// the whole suite the dynamic mix should resemble the paper's Table 2-1
// assumptions — load-heavy, branch-rich general code, with the numeric
// benchmarks contributing a visible FP fraction.
func TestSuiteInstructionMixRealistic(t *testing.T) {
	var groups [isa.NumTableGroups]float64
	n := 0
	for _, b := range All() {
		c, err := compiler.Compile(b.Source, compiler.Options{Machine: machine.Base(), Level: compiler.O4, Unroll: b.DefaultUnroll})
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(c.Prog, sim.Options{Machine: machine.Base()})
		if err != nil {
			t.Fatal(err)
		}
		f := r.GroupFrequencies()
		for g := range groups {
			groups[g] += f[g]
		}
		n++
	}
	for g := range groups {
		groups[g] /= float64(n)
	}
	check := func(g isa.TableGroup, lo, hi float64) {
		if groups[g] < lo || groups[g] > hi {
			t.Errorf("%v frequency %.1f%% outside [%.0f%%, %.0f%%] (paper assumes %s-like mixes)",
				g, groups[g]*100, lo*100, hi*100, g)
		}
	}
	check(isa.GroupLoad, 0.10, 0.35)   // paper assumes 20%
	check(isa.GroupBranch, 0.08, 0.30) // paper assumes 15%
	check(isa.GroupStore, 0.04, 0.25)  // paper assumes 15%
	check(isa.GroupFP, 0.03, 0.25)     // paper assumes 10%
}
