// Package benchmarks embeds the paper's eight-benchmark suite, rewritten
// in TL (see DESIGN.md for the substitution rationale): ccom, grr, linpack,
// livermore, met, stanford, whet, and yacc — "All of the benchmarks are
// written in Modula-2 except for yacc" in the original; here all eight are
// TL.
package benchmarks

import (
	"embed"
	"fmt"
	"sort"
)

//go:embed src/*.tl
var sources embed.FS

// Benchmark describes one suite member.
type Benchmark struct {
	// Name is the paper's benchmark name.
	Name string
	// Description matches §4's listing.
	Description string
	// Source is the TL program text.
	Source string
	// DefaultUnroll is the unroll factor the paper's "official" version
	// uses (Linpack ships with its inner loops unrolled four times;
	// everything else is 1).
	DefaultUnroll int
	// Numeric marks the floating-point benchmarks (livermore, linpack,
	// whet), which §4.4 treats separately.
	Numeric bool
}

var all []Benchmark

func load(name, file, desc string, unroll int, numeric bool) {
	data, err := sources.ReadFile("src/" + file)
	if err != nil {
		panic(fmt.Sprintf("benchmarks: missing embedded source %s: %v", file, err))
	}
	all = append(all, Benchmark{
		Name:          name,
		Description:   desc,
		Source:        string(data),
		DefaultUnroll: unroll,
		Numeric:       numeric,
	})
}

func init() {
	load("ccom", "ccom.tl", "Our own C compiler.", 1, false)
	load("grr", "grr.tl", "A PC board router.", 1, false)
	load("linpack", "linpack.tl", "Linpack, double precision, unrolled 4x unless noted otherwise.", 4, true)
	load("livermore", "livermore.tl", "The first 14 Livermore Loops, double precision, not unrolled unless noted otherwise.", 1, true)
	load("met", "met.tl", "Metronome, a board-level timing verifier.", 1, false)
	load("stanford", "stanford.tl", "The collection of Hennessy benchmarks from Stanford (including puzzle, tower, queens, etc.).", 1, false)
	load("whet", "whet.tl", "Whetstones.", 1, true)
	load("yacc", "yacc.tl", "The Unix parser generator.", 1, false)
}

// All returns the suite in the paper's (alphabetical) order.
func All() []Benchmark {
	out := append([]Benchmark(nil), all...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds one benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("benchmarks: unknown benchmark %q", name)
}

// Names lists the suite names in order.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}
