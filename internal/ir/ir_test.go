package ir

import (
	"strings"
	"testing"

	"ilp/internal/isa"
)

// buildDiamond makes:
//
//	b0: v0=li 1; br v0==v0 -> b1 else b2
//	b1: v1=addi v0,1; jmp b3
//	b2: v2=addi v0,2; jmp b3
//	b3: ret
func buildDiamond() *Func {
	f := &Func{Name: "diamond"}
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	v0 := f.NewReg(RInt)
	v1 := f.NewReg(RInt)
	v2 := f.NewReg(RInt)
	b0.Instrs = []Instr{
		{Kind: KOp, Op: isa.OpLi, Dst: v0, Src1: NoReg, Src2: NoReg, Imm: 1},
		{Kind: KBr, Op: isa.OpBeq, Dst: NoReg, Src1: v0, Src2: v0, Targets: [2]*Block{b1, b2}},
	}
	b1.Instrs = []Instr{
		{Kind: KOp, Op: isa.OpAddi, Dst: v1, Src1: v0, Src2: NoReg, Imm: 1},
		{Kind: KJmp, Dst: NoReg, Src1: NoReg, Src2: NoReg, Targets: [2]*Block{b3}},
	}
	b2.Instrs = []Instr{
		{Kind: KOp, Op: isa.OpAddi, Dst: v2, Src1: v0, Src2: NoReg, Imm: 2},
		{Kind: KJmp, Dst: NoReg, Src1: NoReg, Src2: NoReg, Targets: [2]*Block{b3}},
	}
	b3.Instrs = []Instr{
		{Kind: KRet, Dst: NoReg, Src1: NoReg, Src2: NoReg},
	}
	return f
}

// buildLoop makes:
//
//	b0: v0=li 0; jmp b1
//	b1: v1=addi v0,1; br v1 < v1 ? -> b1 else b2   (self back edge)
//	b2: ret v1
func buildLoop() *Func {
	f := &Func{Name: "loop"}
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	v0 := f.NewReg(RInt)
	v1 := f.NewReg(RInt)
	b0.Instrs = []Instr{
		{Kind: KOp, Op: isa.OpLi, Dst: v0, Src1: NoReg, Src2: NoReg},
		{Kind: KJmp, Dst: NoReg, Src1: NoReg, Src2: NoReg, Targets: [2]*Block{b1}},
	}
	b1.Instrs = []Instr{
		{Kind: KOp, Op: isa.OpAddi, Dst: v1, Src1: v0, Src2: NoReg, Imm: 1},
		{Kind: KBr, Op: isa.OpBlt, Dst: NoReg, Src1: v1, Src2: v0, Targets: [2]*Block{b1, b2}},
	}
	b2.Instrs = []Instr{
		{Kind: KRet, Dst: NoReg, Src1: v1, Src2: NoReg},
	}
	return f
}

func TestValidateOK(t *testing.T) {
	for _, f := range []*Func{buildDiamond(), buildLoop()} {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestValidateRejectsMisplacedTerminator(t *testing.T) {
	f := buildDiamond()
	// Insert a jump in the middle of b0.
	b0 := f.Blocks[0]
	b0.Instrs = append([]Instr{{Kind: KJmp, Dst: NoReg, Src1: NoReg, Src2: NoReg, Targets: [2]*Block{f.Blocks[3]}}}, b0.Instrs...)
	if err := f.Validate(); err == nil {
		t.Error("expected misplaced-terminator error")
	}
}

func TestValidateRejectsEmptyBlock(t *testing.T) {
	f := buildDiamond()
	f.Blocks[1].Instrs = nil
	if err := f.Validate(); err == nil {
		t.Error("expected empty-block error")
	}
}

func TestSuccsAndPreds(t *testing.T) {
	f := buildDiamond()
	b0, b1, b2, b3 := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	s := b0.Succs()
	if len(s) != 2 || s[0] != b1 || s[1] != b2 {
		t.Errorf("b0 succs wrong: %v", s)
	}
	if len(b3.Succs()) != 0 {
		t.Error("ret block should have no successors")
	}
	preds := f.Preds()
	if len(preds[b3]) != 2 {
		t.Errorf("b3 preds = %d, want 2", len(preds[b3]))
	}
}

func TestReversePostorder(t *testing.T) {
	f := buildDiamond()
	rpo := f.ReversePostorder()
	if len(rpo) != 4 || rpo[0] != f.Blocks[0] {
		t.Fatalf("rpo wrong: %v", rpo)
	}
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// Entry before both branches, join last.
	if !(pos[f.Blocks[0]] < pos[f.Blocks[1]] && pos[f.Blocks[0]] < pos[f.Blocks[2]]) {
		t.Error("entry not before branches")
	}
	if pos[f.Blocks[3]] != 3 {
		t.Error("join not last")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := buildDiamond()
	dead := f.NewBlock()
	dead.Instrs = []Instr{{Kind: KRet, Dst: NoReg, Src1: NoReg, Src2: NoReg}}
	f.RemoveUnreachable()
	for _, b := range f.Blocks {
		if b == dead {
			t.Error("unreachable block kept")
		}
	}
	if len(f.Blocks) != 4 {
		t.Errorf("blocks = %d, want 4", len(f.Blocks))
	}
}

func TestLiveness(t *testing.T) {
	f := buildDiamond()
	lv := f.ComputeLiveness()
	v0 := Reg(0)
	// v0 defined in b0, used in b1 and b2: live-out of b0, live-in to
	// b1 and b2, dead at b3.
	if !lv.Out(f.Blocks[0]).Has(v0) {
		t.Error("v0 should be live-out of b0")
	}
	if !lv.In(f.Blocks[1]).Has(v0) || !lv.In(f.Blocks[2]).Has(v0) {
		t.Error("v0 should be live-in to both branches")
	}
	if lv.In(f.Blocks[3]).Has(v0) {
		t.Error("v0 should be dead at the join")
	}
}

func TestLivenessLoop(t *testing.T) {
	f := buildLoop()
	lv := f.ComputeLiveness()
	v0 := Reg(0)
	// v0 is used by b1 every iteration: live around the loop.
	if !lv.In(f.Blocks[1]).Has(v0) || !lv.Out(f.Blocks[1]).Has(v0) {
		t.Error("loop-carried register not live through loop")
	}
}

func TestDominators(t *testing.T) {
	f := buildDiamond()
	idom := f.Dominators()
	b0, b1, b2, b3 := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if idom[b0] != nil {
		t.Error("entry has an idom")
	}
	if idom[b1] != b0 || idom[b2] != b0 || idom[b3] != b0 {
		t.Errorf("idoms wrong: b1->%v b2->%v b3->%v", idom[b1], idom[b2], idom[b3])
	}
	if !Dominates(idom, b0, b3) {
		t.Error("entry should dominate join")
	}
	if Dominates(idom, b1, b3) {
		t.Error("b1 must not dominate join")
	}
}

func TestNaturalLoops(t *testing.T) {
	f := buildLoop()
	loops := f.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != f.Blocks[1] {
		t.Error("wrong header")
	}
	if !l.Blocks[f.Blocks[1]] || l.Blocks[f.Blocks[0]] || l.Blocks[f.Blocks[2]] {
		t.Errorf("loop body wrong: %v", l.Blocks)
	}
	depths := f.LoopDepths()
	if depths[f.Blocks[1]] != 1 || depths[f.Blocks[0]] != 0 {
		t.Errorf("depths wrong: %v", depths)
	}
}

func TestUsesDefsReplace(t *testing.T) {
	v1, v2, v3 := Reg(1), Reg(2), Reg(3)
	in := Instr{Kind: KOp, Op: isa.OpAdd, Dst: v3, Src1: v1, Src2: v2}
	var buf []Reg
	uses := in.Uses(buf)
	if len(uses) != 2 || uses[0] != v1 || uses[1] != v2 {
		t.Errorf("uses = %v", uses)
	}
	if in.Def() != v3 {
		t.Errorf("def = %v", in.Def())
	}
	in.ReplaceUses(v1, v3)
	if in.Src1 != v3 {
		t.Error("ReplaceUses failed")
	}

	call := Instr{Kind: KCall, Dst: v3, Src1: NoReg, Src2: NoReg, Args: []Reg{v1, v2, v1}}
	call.ReplaceUses(v1, v2)
	if call.Args[0] != v2 || call.Args[2] != v2 {
		t.Error("ReplaceUses missed call args")
	}
	if !call.ReadsMemory() || !call.WritesMemory() {
		t.Error("calls touch memory conservatively")
	}
}

func TestInstrClassMapping(t *testing.T) {
	cases := []struct {
		in   Instr
		want isa.Class
	}{
		{Instr{Kind: KLoadVar}, isa.ClassLoad},
		{Instr{Kind: KStoreElem}, isa.ClassStore},
		{Instr{Kind: KLoadSlot}, isa.ClassLoad},
		{Instr{Kind: KStoreSlot}, isa.ClassStore},
		{Instr{Kind: KBr, Op: isa.OpBeq}, isa.ClassBranch},
		{Instr{Kind: KCall}, isa.ClassJump},
		{Instr{Kind: KPrint, Op: isa.OpPrinti}, isa.ClassStore},
		{Instr{Kind: KOp, Op: isa.OpFmul}, isa.ClassFPMul},
	}
	for _, c := range cases {
		if got := c.in.Class(); got != c.want {
			t.Errorf("kind %d class = %v, want %v", c.in.Kind, got, c.want)
		}
	}
}

func TestPinnedRegs(t *testing.T) {
	f := &Func{Name: "p"}
	r := f.NewPinnedReg(RInt, isa.R(30))
	if got := f.Pinned[r]; got != isa.R(30) {
		t.Errorf("pinned = %v", got)
	}
	if f.RegClassOf(r) != RInt {
		t.Error("class lost")
	}
}

func TestStringRendering(t *testing.T) {
	f := buildDiamond()
	s := f.String()
	for _, want := range []string{"func diamond", "li v0", "addi v1, v0, 1", "beq", "jmp b3", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q in:\n%s", want, s)
		}
	}
}
