// Package ir defines the compiler's intermediate representation: a
// three-address code over unlimited virtual registers, organized into basic
// blocks with explicit control-flow edges. It corresponds to the Mahler
// intermediate language of the paper's toolchain [17]: close enough to the
// target ISA that instruction counts and classes are meaningful, abstract
// enough that optimization passes stay simple.
//
// Named variables (locals, params, globals) live in memory and are accessed
// with LoadVar/StoreVar until the global register allocation pass promotes
// them to home registers — exactly the structure the paper needs to measure
// how register allocation changes available parallelism (§4.4). Array
// elements are accessed with LoadElem/StoreElem carrying a linear index
// register plus a constant offset, which is what the careful-unrolling
// memory disambiguation reasons about.
package ir

import (
	"fmt"
	"strings"

	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/lang/sem"
)

// Reg is a virtual register. NoReg means "no operand".
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// RegClass says which register file a virtual register belongs to.
type RegClass uint8

// Register classes.
const (
	RInt RegClass = iota
	RFP
)

// Kind discriminates IR instructions.
type Kind uint8

// Instruction kinds.
const (
	// KOp is a register-to-register computation; Op gives the operation.
	KOp Kind = iota
	// KLoadVar loads scalar variable Sym into Dst.
	KLoadVar
	// KStoreVar stores Src1 into scalar variable Sym.
	KStoreVar
	// KLoadElem loads Sym[Src1 + Imm] into Dst (linear word index).
	KLoadElem
	// KStoreElem stores Src2 into Sym[Src1 + Imm].
	KStoreElem
	// KCall calls function Sym with Args; Dst receives the result if the
	// function returns one (NoReg otherwise).
	KCall
	// KRet returns from the function, with Src1 if it has a result.
	KRet
	// KBr is a conditional branch: Op is an isa branch opcode comparing
	// Src1 and Src2; Targets[0] is taken, Targets[1] is the fall-through.
	KBr
	// KJmp is an unconditional branch to Targets[0].
	KJmp
	// KPrint emits Src1; Op is OpPrinti or OpPrintf.
	KPrint
	// KLoadSlot loads stack spill slot Imm into Dst. Inserted by the
	// register allocator.
	KLoadSlot
	// KStoreSlot stores Src1 into stack spill slot Imm.
	KStoreSlot
)

// Instr is one IR instruction.
type Instr struct {
	Kind Kind
	// Op refines KOp (any computational isa opcode), KBr (branch
	// opcode), and KPrint.
	Op   isa.Opcode
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
	FImm float64
	// Sym is the variable for KLoadVar/KStoreVar, the array for
	// KLoadElem/KStoreElem, and the callee for KCall.
	Sym *ast.Symbol
	// Args are call arguments.
	Args []Reg
	// Targets are successor blocks for KBr (taken, fallthrough) and
	// KJmp (Targets[0]).
	Targets [2]*Block
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Kind == KBr || in.Kind == KJmp || in.Kind == KRet
}

// Class returns the machine instruction class used for latency estimates.
func (in *Instr) Class() isa.Class {
	switch in.Kind {
	case KLoadVar, KLoadElem, KLoadSlot:
		return isa.ClassLoad
	case KStoreVar, KStoreElem, KStoreSlot:
		return isa.ClassStore
	case KCall:
		return isa.ClassJump
	case KRet:
		return isa.ClassJump
	case KBr, KJmp:
		return isa.ClassBranch
	case KPrint:
		return isa.ClassStore
	default:
		return in.Op.Class()
	}
}

// Uses appends the registers the instruction reads to buf and returns it.
func (in *Instr) Uses(buf []Reg) []Reg {
	add := func(r Reg) {
		if r != NoReg {
			buf = append(buf, r)
		}
	}
	switch in.Kind {
	case KOp:
		info := in.Op.Info()
		if info.NSrc >= 1 {
			add(in.Src1)
		}
		if info.NSrc >= 2 {
			add(in.Src2)
		}
	case KLoadVar, KLoadSlot:
	case KStoreVar, KStoreSlot:
		add(in.Src1)
	case KLoadElem:
		add(in.Src1)
	case KStoreElem:
		add(in.Src1)
		add(in.Src2)
	case KCall:
		for _, a := range in.Args {
			add(a)
		}
	case KRet:
		add(in.Src1)
	case KBr:
		add(in.Src1)
		add(in.Src2)
	case KPrint:
		add(in.Src1)
	}
	return buf
}

// Def returns the register the instruction writes, or NoReg.
func (in *Instr) Def() Reg {
	switch in.Kind {
	case KOp:
		if in.Op.Info().HasDst {
			return in.Dst
		}
	case KLoadVar, KLoadElem, KLoadSlot:
		return in.Dst
	case KCall:
		return in.Dst // may be NoReg
	}
	return NoReg
}

// ReplaceUses substitutes register from with to in all source positions.
func (in *Instr) ReplaceUses(from, to Reg) {
	sub := func(r *Reg) {
		if *r == from {
			*r = to
		}
	}
	switch in.Kind {
	case KOp:
		info := in.Op.Info()
		if info.NSrc >= 1 {
			sub(&in.Src1)
		}
		if info.NSrc >= 2 {
			sub(&in.Src2)
		}
	case KStoreVar, KStoreSlot, KRet, KPrint:
		sub(&in.Src1)
	case KLoadElem:
		sub(&in.Src1)
	case KStoreElem:
		sub(&in.Src1)
		sub(&in.Src2)
	case KBr:
		sub(&in.Src1)
		sub(&in.Src2)
	case KCall:
		for i := range in.Args {
			if in.Args[i] == from {
				in.Args[i] = to
			}
		}
	}
}

// Reads reports whether the instruction touches memory as a load, and
// Writes as a store (calls conservatively do both).
func (in *Instr) ReadsMemory() bool {
	switch in.Kind {
	case KLoadVar, KLoadElem, KLoadSlot, KCall:
		return true
	}
	return false
}

// WritesMemory reports whether the instruction may write memory.
func (in *Instr) WritesMemory() bool {
	switch in.Kind {
	case KStoreVar, KStoreElem, KStoreSlot, KCall, KPrint:
		return true
	}
	return false
}

// String disassembles the instruction.
func (in *Instr) String() string {
	r := func(x Reg) string {
		if x == NoReg {
			return "-"
		}
		return fmt.Sprintf("v%d", x)
	}
	switch in.Kind {
	case KOp:
		info := in.Op.Info()
		s := in.Op.String()
		if info.HasDst {
			s += " " + r(in.Dst)
		}
		if info.NSrc >= 1 {
			s += ", " + r(in.Src1)
		}
		if info.NSrc >= 2 {
			s += ", " + r(in.Src2)
		}
		if info.HasImm {
			s += fmt.Sprintf(", %d", in.Imm)
		}
		if info.FImm {
			s += fmt.Sprintf(", %g", in.FImm)
		}
		return s
	case KLoadVar:
		return fmt.Sprintf("loadvar %s, %s", r(in.Dst), in.Sym.Name)
	case KStoreVar:
		return fmt.Sprintf("storevar %s, %s", in.Sym.Name, r(in.Src1))
	case KLoadElem:
		return fmt.Sprintf("loadelem %s, %s[%s+%d]", r(in.Dst), in.Sym.Name, r(in.Src1), in.Imm)
	case KStoreElem:
		return fmt.Sprintf("storeelem %s[%s+%d], %s", in.Sym.Name, r(in.Src1), in.Imm, r(in.Src2))
	case KCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = r(a)
		}
		if in.Dst != NoReg {
			return fmt.Sprintf("call %s, %s(%s)", r(in.Dst), in.Sym.Name, strings.Join(args, ", "))
		}
		return fmt.Sprintf("call %s(%s)", in.Sym.Name, strings.Join(args, ", "))
	case KRet:
		if in.Src1 != NoReg {
			return "ret " + r(in.Src1)
		}
		return "ret"
	case KBr:
		return fmt.Sprintf("%s %s, %s, b%d else b%d", in.Op, r(in.Src1), r(in.Src2),
			in.Targets[0].ID, in.Targets[1].ID)
	case KJmp:
		return fmt.Sprintf("jmp b%d", in.Targets[0].ID)
	case KPrint:
		return fmt.Sprintf("%s %s", in.Op, r(in.Src1))
	case KLoadSlot:
		return fmt.Sprintf("loadslot %s, [%d]", r(in.Dst), in.Imm)
	case KStoreSlot:
		return fmt.Sprintf("storeslot [%d], %s", in.Imm, r(in.Src1))
	}
	return "instr?"
}

// Block is a basic block: straight-line instructions ending in exactly one
// terminator.
type Block struct {
	ID     int
	Instrs []Instr
}

// Terminator returns the block's terminator, or nil if malformed.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := &b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the block's successors.
func (b *Block) Succs() []*Block {
	return b.AppendSuccs(nil)
}

// AppendSuccs appends b's successors to dst and returns it. With a caller
// scratch buffer it is the allocation-free form of Succs for analysis
// loops (a block has at most two successors).
func (b *Block) AppendSuccs(dst []*Block) []*Block {
	t := b.Terminator()
	if t == nil {
		return dst
	}
	switch t.Kind {
	case KBr:
		return append(dst, t.Targets[0], t.Targets[1])
	case KJmp:
		return append(dst, t.Targets[0])
	}
	return dst
}

// Func is one IR function.
type Func struct {
	Name   string
	Decl   *ast.FuncDecl
	Info   *sem.FuncInfo
	Blocks []*Block // Blocks[0] is the entry
	// Pinned maps virtual registers to fixed physical registers. Home
	// registers introduced by global register allocation are pinned; the
	// local allocator must honor these assignments and never spill them.
	Pinned map[Reg]isa.Reg
	// regClass is indexed by virtual register number.
	regClass []RegClass
	nextID   int
}

// NewPinnedReg allocates a virtual register bound to a physical register.
func (f *Func) NewPinnedReg(c RegClass, phys isa.Reg) Reg {
	r := f.NewReg(c)
	if f.Pinned == nil {
		f.Pinned = map[Reg]isa.Reg{}
	}
	f.Pinned[r] = phys
	return r
}

// NewReg allocates a fresh virtual register of the class.
func (f *Func) NewReg(c RegClass) Reg {
	f.regClass = append(f.regClass, c)
	return Reg(len(f.regClass) - 1)
}

// NumRegs returns the number of virtual registers allocated.
func (f *Func) NumRegs() int { return len(f.regClass) }

// RegClassOf returns the class of a virtual register.
func (f *Func) RegClassOf(r Reg) RegClass { return f.regClass[r] }

// NewBlock appends a fresh empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextID}
	f.nextID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Preds computes predecessor lists (by block) for the current CFG.
func (f *Func) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Validate checks structural invariants: every block ends in exactly one
// terminator, terminators appear only at block ends, and branch targets are
// blocks of this function.
func (f *Func) Validate() error {
	known := map[*Block]bool{}
	for _, b := range f.Blocks {
		known[b] = true
	}
	var buf []Reg
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s: block b%d empty", f.Name, b.ID)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.IsTerminator() != (i == len(b.Instrs)-1) {
				return fmt.Errorf("ir: %s: block b%d instruction %d: terminator misplaced", f.Name, b.ID, i)
			}
			for _, tgt := range in.Targets {
				if tgt != nil && !known[tgt] {
					return fmt.Errorf("ir: %s: block b%d: branch to foreign block", f.Name, b.ID)
				}
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				if int(u) >= f.NumRegs() {
					return fmt.Errorf("ir: %s: block b%d: use of unallocated v%d", f.Name, b.ID, u)
				}
			}
			if d := in.Def(); d != NoReg && int(d) >= f.NumRegs() {
				return fmt.Errorf("ir: %s: block b%d: def of unallocated v%d", f.Name, b.ID, d)
			}
		}
	}
	return nil
}

// String disassembles the function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}

// Program is a compiled IR module.
type Program struct {
	Info  *sem.Info
	Funcs []*Func
	// Promoted maps symbols promoted by global register allocation to
	// their home register (a physical isa.Reg). Populated by the
	// regalloc package's PromoteHomes.
	Promoted map[*ast.Symbol]isa.Reg
}

// FuncByName finds a function.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Validate checks all functions.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String disassembles the module.
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}
