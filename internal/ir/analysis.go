package ir

// This file holds the CFG analyses the optimizer and register allocator
// share: reverse postorder, liveness, dominators, and natural loops.

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder (a topological-ish order good for forward dataflow and for
// linearizing code).
func (f *Func) ReversePostorder() []*Block {
	seen := map[*Block]bool{}
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		succs := b.Succs()
		// Visit the fall-through last so it ends up adjacent in the
		// final order where possible.
		for i := len(succs) - 1; i >= 0; i-- {
			if !seen[succs[i]] {
				dfs(succs[i])
			}
		}
		order = append(order, b)
	}
	dfs(f.Entry())
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// RemoveUnreachable drops blocks not reachable from the entry.
func (f *Func) RemoveUnreachable() {
	reach := map[*Block]bool{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		reach[b] = true
		for _, s := range b.Succs() {
			if !reach[s] {
				dfs(s)
			}
		}
	}
	dfs(f.Entry())
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
}

// Liveness holds per-block live-in/live-out virtual register sets.
type Liveness struct {
	In  map[*Block]map[Reg]bool
	Out map[*Block]map[Reg]bool
}

// ComputeLiveness runs the standard backward iterative dataflow.
func (f *Func) ComputeLiveness() *Liveness {
	lv := &Liveness{
		In:  map[*Block]map[Reg]bool{},
		Out: map[*Block]map[Reg]bool{},
	}
	// use/def per block.
	use := map[*Block]map[Reg]bool{}
	def := map[*Block]map[Reg]bool{}
	var buf []Reg
	for _, b := range f.Blocks {
		u, d := map[Reg]bool{}, map[Reg]bool{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			buf = in.Uses(buf[:0])
			for _, r := range buf {
				if !d[r] {
					u[r] = true
				}
			}
			if dst := in.Def(); dst != NoReg {
				d[dst] = true
			}
		}
		use[b], def[b] = u, d
		lv.In[b] = map[Reg]bool{}
		lv.Out[b] = map[Reg]bool{}
	}
	changed := true
	for changed {
		changed = false
		// Iterate in reverse RPO for fast convergence.
		rpo := f.ReversePostorder()
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.Out[b]
			for _, s := range b.Succs() {
				for r := range lv.In[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := lv.In[b]
			for r := range use[b] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range out {
				if !def[b][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}
	return lv
}

// Dominators computes the immediate-dominator map (entry maps to nil) with
// the Cooper-Harvey-Kennedy iterative algorithm.
func (f *Func) Dominators() map[*Block]*Block {
	rpo := f.ReversePostorder()
	index := map[*Block]int{}
	for i, b := range rpo {
		index[b] = i
	}
	idom := map[*Block]*Block{}
	entry := f.Entry()
	idom[entry] = entry
	preds := f.Preds()

	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range preds[b] {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = nil
	return idom
}

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = idom[b]
	}
	return false
}

// Loop is a natural loop: a back edge tail->header plus the body.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	// Depth is the nesting depth (1 = outermost).
	Depth int
}

// NaturalLoops finds all natural loops (merging loops that share a header)
// and computes nesting depths.
func (f *Func) NaturalLoops() []*Loop {
	idom := f.Dominators()
	preds := f.Preds()
	byHeader := map[*Block]*Loop{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if Dominates(idom, s, b) {
				// Back edge b -> s.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
				}
				// Walk predecessors from the tail to collect the body.
				var stack []*Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range preds[x] {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	var loops []*Loop
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	// Depth: number of loops containing each header.
	for _, l := range loops {
		l.Depth = 0
		for _, m := range loops {
			if m.Blocks[l.Header] {
				l.Depth++
			}
		}
	}
	return loops
}

// LoopDepths returns the nesting depth per block (0 = not in any loop).
func (f *Func) LoopDepths() map[*Block]int {
	depth := map[*Block]int{}
	for _, l := range f.NaturalLoops() {
		for b := range l.Blocks {
			depth[b]++
		}
	}
	return depth
}
