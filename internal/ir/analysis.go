package ir

import "math/bits"

// This file holds the CFG analyses the optimizer and register allocator
// share: reverse postorder, liveness, dominators, and natural loops.

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder (a topological-ish order good for forward dataflow and for
// linearizing code).
func (f *Func) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	order := make([]*Block, 0, len(f.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		var sb [2]*Block
		succs := b.AppendSuccs(sb[:0])
		// Visit the fall-through last so it ends up adjacent in the
		// final order where possible.
		for i := len(succs) - 1; i >= 0; i-- {
			if !seen[succs[i]] {
				dfs(succs[i])
			}
		}
		order = append(order, b)
	}
	dfs(f.Entry())
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// RemoveUnreachable drops blocks not reachable from the entry.
func (f *Func) RemoveUnreachable() {
	reach := map[*Block]bool{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		reach[b] = true
		for _, s := range b.Succs() {
			if !reach[s] {
				dfs(s)
			}
		}
	}
	dfs(f.Entry())
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
}

// RegSet is a dense bitset over a function's virtual register numbers
// (0..NumRegs-1). Probing a register beyond the set's size reports false
// rather than panicking, so the zero-length set is a valid empty set.
type RegSet []uint64

// NewRegSet returns an empty set sized for nregs virtual registers.
func NewRegSet(nregs int) RegSet { return make(RegSet, (nregs+63)/64) }

// Has reports whether r is in the set.
func (s RegSet) Has(r Reg) bool {
	w := int(r) >> 6
	return w < len(s) && s[w]&(1<<(uint(r)&63)) != 0
}

// Add inserts r.
func (s RegSet) Add(r Reg) { s[int(r)>>6] |= 1 << (uint(r) & 63) }

// Remove deletes r.
func (s RegSet) Remove(r Reg) {
	if w := int(r) >> 6; w < len(s) {
		s[w] &^= 1 << (uint(r) & 63)
	}
}

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet { return append(RegSet(nil), s...) }

// ForEach calls fn for every register in the set, in ascending order.
func (s RegSet) ForEach(fn func(Reg)) {
	for w, word := range s {
		for word != 0 {
			fn(Reg(w<<6 + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// Liveness holds per-block live-in/live-out virtual register sets.
type Liveness struct {
	in, out map[*Block]RegSet
}

// In returns the live-in set of b (empty for blocks unknown to the
// analysis). Callers must treat it as read-only; Clone before mutating.
func (lv *Liveness) In(b *Block) RegSet { return lv.in[b] }

// Out returns the live-out set of b, with the same contract as In.
func (lv *Liveness) Out(b *Block) RegSet { return lv.out[b] }

// ComputeLiveness runs the standard backward iterative dataflow. The sets
// are word-parallel bitsets carved from one backing array — per sweep this
// analysis runs on every function at every optimization level for every
// machine configuration, and the per-register map version of it used to be
// the compile pipeline's top allocation site.
func (f *Func) ComputeLiveness() *Liveness {
	n := len(f.Blocks)
	words := (f.NumRegs() + 63) / 64
	backing := make([]uint64, 4*n*words)
	sets := func(fam int) []RegSet {
		out := make([]RegSet, n)
		for i := range out {
			off := (fam*n + i) * words
			out[i] = RegSet(backing[off : off+words : off+words])
		}
		return out
	}
	use, def, in, out := sets(0), sets(1), sets(2), sets(3)

	idx := make(map[*Block]int, n)
	var buf []Reg
	for bi, b := range f.Blocks {
		idx[b] = bi
		u, d := use[bi], def[bi]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			buf = in.Uses(buf[:0])
			for _, r := range buf {
				if !d.Has(r) {
					u.Add(r)
				}
			}
			if dst := in.Def(); dst != NoReg {
				d.Add(dst)
			}
		}
	}

	// Iterate in reverse RPO for fast convergence; the CFG does not change
	// here, so the order is computed once, not per fixpoint round.
	rpo := f.ReversePostorder()
	var sb [2]*Block
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			bi := idx[rpo[i]]
			ob := out[bi]
			for _, s := range rpo[i].AppendSuccs(sb[:0]) {
				si := in[idx[s]]
				for w := range ob {
					if v := ob[w] | si[w]; v != ob[w] {
						ob[w] = v
						changed = true
					}
				}
			}
			// in = use ∪ (out − def), word-parallel.
			ib, ub, db := in[bi], use[bi], def[bi]
			for w := range ib {
				if v := ub[w] | (ob[w] &^ db[w]); v != ib[w] {
					ib[w] = v
					changed = true
				}
			}
		}
	}

	lv := &Liveness{
		in:  make(map[*Block]RegSet, n),
		out: make(map[*Block]RegSet, n),
	}
	for bi, b := range f.Blocks {
		lv.in[b], lv.out[b] = in[bi], out[bi]
	}
	return lv
}

// Dominators computes the immediate-dominator map (entry maps to nil) with
// the Cooper-Harvey-Kennedy iterative algorithm.
func (f *Func) Dominators() map[*Block]*Block {
	rpo := f.ReversePostorder()
	index := map[*Block]int{}
	for i, b := range rpo {
		index[b] = i
	}
	idom := map[*Block]*Block{}
	entry := f.Entry()
	idom[entry] = entry
	preds := f.Preds()

	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range preds[b] {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = nil
	return idom
}

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = idom[b]
	}
	return false
}

// Loop is a natural loop: a back edge tail->header plus the body.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	// Depth is the nesting depth (1 = outermost).
	Depth int
}

// NaturalLoops finds all natural loops (merging loops that share a header)
// and computes nesting depths.
func (f *Func) NaturalLoops() []*Loop {
	idom := f.Dominators()
	preds := f.Preds()
	byHeader := map[*Block]*Loop{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if Dominates(idom, s, b) {
				// Back edge b -> s.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
				}
				// Walk predecessors from the tail to collect the body.
				var stack []*Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range preds[x] {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	var loops []*Loop
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	// Depth: number of loops containing each header.
	for _, l := range loops {
		l.Depth = 0
		for _, m := range loops {
			if m.Blocks[l.Header] {
				l.Depth++
			}
		}
	}
	return loops
}

// LoopDepths returns the nesting depth per block (0 = not in any loop).
func (f *Func) LoopDepths() map[*Block]int {
	depth := map[*Block]int{}
	for _, l := range f.NaturalLoops() {
		for b := range l.Blocks {
			depth[b]++
		}
	}
	return depth
}
