package ir

import "ilp/internal/lang/ast"

// MemKind classifies a machine instruction's memory reference for the
// scheduler's dependence analysis.
type MemKind uint8

// Memory reference kinds.
const (
	// MemNone: the instruction does not touch memory.
	MemNone MemKind = iota
	// MemScalar: a named scalar variable (global, local or parameter
	// slot). In Modula-2 these could be aliased through VAR parameters,
	// so the conservative scheduler treats them like any other memory;
	// the careful mode knows distinct scalars cannot alias.
	MemScalar
	// MemArray: an element of a named array.
	MemArray
	// MemSpill: a compiler-generated spill or save slot. Never aliased —
	// even the conservative scheduler disambiguates these, as the
	// paper's scheduler must have (spill traffic would otherwise
	// serialize everything uniformly).
	MemSpill
	// MemOut: the output port (printi/printf). Ordered against itself so
	// program output order is preserved, independent of data memory.
	MemOut
)

// MemRef annotates one machine instruction with what it touches. Produced
// by the code generator in an array parallel to the instruction stream and
// consumed by the pipeline scheduler.
type MemRef struct {
	Kind MemKind
	// Sym is the variable or array for MemScalar/MemArray.
	Sym *ast.Symbol
	// Slot distinguishes spill/save slots within a function.
	Slot int
}
