// Package pipeviz renders the paper's pipeline-execution diagrams
// (Figures 2-1 through 2-8 and 4-2) as ASCII timelines: one row per
// instruction, one column per minor cycle, with the execute stage drawn as
// '#' (the paper's crosshatch) and fetch/decode/writeback as F, D, W.
package pipeviz

import (
	"fmt"
	"strings"
)

// Row is one instruction's timeline.
type Row struct {
	Label string
	// Start is the issue time in minor cycles; Stages is the per-stage
	// cell pattern from issue onward.
	Start  int
	Stages string
}

// Diagram is a renderable figure.
type Diagram struct {
	Title string
	// MinorPerBase is how many columns make one base cycle (for the
	// axis annotation).
	MinorPerBase int
	Rows         []Row
}

// Render draws the diagram.
func (d *Diagram) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", d.Title)
	width := 0
	for _, r := range d.Rows {
		if w := r.Start + len(r.Stages); w > width {
			width = w
		}
	}
	labelW := 0
	for _, r := range d.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "  %-*s |%s%s|\n", labelW, r.Label,
			strings.Repeat(" ", r.Start), r.Stages+strings.Repeat(" ", width-r.Start-len(r.Stages)))
	}
	// Time axis in base cycles.
	fmt.Fprintf(&b, "  %-*s  ", labelW, "")
	for c := 0; c*d.MinorPerBase <= width; c++ {
		fmt.Fprintf(&b, "%-*d", d.MinorPerBase, c)
	}
	b.WriteString("\n  ")
	fmt.Fprintf(&b, "%-*s  (time in base cycles; # = execute)\n", labelW, "")
	return b.String()
}

// stages builds the F D # W pattern with each stage occupying stageMinor
// columns.
func stages(stageMinor int) string {
	return strings.Repeat("F", stageMinor) +
		strings.Repeat("D", stageMinor) +
		strings.Repeat("#", stageMinor) +
		strings.Repeat("W", stageMinor)
}

// Base renders Figure 2-1: the base machine, one instruction per cycle,
// one-cycle execute.
func Base(n int) *Diagram {
	d := &Diagram{Title: "Figure 2-1: execution in a base machine", MinorPerBase: 1}
	for i := 0; i < n; i++ {
		d.Rows = append(d.Rows, Row{Label: fmt.Sprintf("instr %d", i), Start: i, Stages: stages(1)})
	}
	return d
}

// UnderpipelinedLatency renders Figure 2-2: cycle time twice the simple
// operation latency (each stage spans two base cycles; operation and
// writeback share a stage in the paper's figure).
func UnderpipelinedLatency(n int) *Diagram {
	d := &Diagram{Title: "Figure 2-2: underpipelined, cycle >= 2x operation latency", MinorPerBase: 1}
	for i := 0; i < n; i++ {
		d.Rows = append(d.Rows, Row{Label: fmt.Sprintf("instr %d", i), Start: 2 * i, Stages: "FFDD##WW"})
	}
	return d
}

// UnderpipelinedIssue renders Figure 2-3: issue only every other cycle.
func UnderpipelinedIssue(n int) *Diagram {
	d := &Diagram{Title: "Figure 2-3: underpipelined, issues < 1 instruction per cycle", MinorPerBase: 1}
	for i := 0; i < n; i++ {
		d.Rows = append(d.Rows, Row{Label: fmt.Sprintf("instr %d", i), Start: 2 * i, Stages: stages(1)})
	}
	return d
}

// Superscalar renders Figure 2-4: n instructions issued per cycle.
func Superscalar(degree, groups int) *Diagram {
	d := &Diagram{Title: fmt.Sprintf("Figure 2-4: superscalar execution (n=%d)", degree), MinorPerBase: 1}
	for g := 0; g < groups; g++ {
		for j := 0; j < degree; j++ {
			d.Rows = append(d.Rows, Row{Label: fmt.Sprintf("instr %d", g*degree+j), Start: g, Stages: stages(1)})
		}
	}
	return d
}

// VLIW renders Figure 2-5: each instruction specifies several operations
// (parallel execute stages within one row group).
func VLIW(opsPerInstr, instrs int) *Diagram {
	d := &Diagram{Title: fmt.Sprintf("Figure 2-5: VLIW execution (%d operations per instruction)", opsPerInstr), MinorPerBase: 1}
	for i := 0; i < instrs; i++ {
		for j := 0; j < opsPerInstr; j++ {
			label := fmt.Sprintf("instr %d", i)
			if j > 0 {
				label = fmt.Sprintf("  op %d", j)
			}
			d.Rows = append(d.Rows, Row{Label: label, Start: i, Stages: stages(1)})
		}
	}
	return d
}

// Superpipelined renders Figure 2-6: cycle time 1/m of the base machine,
// one instruction per minor cycle, stages subdivided m ways.
func Superpipelined(m, n int) *Diagram {
	d := &Diagram{Title: fmt.Sprintf("Figure 2-6: superpipelined execution (m=%d)", m), MinorPerBase: m}
	for i := 0; i < n; i++ {
		d.Rows = append(d.Rows, Row{Label: fmt.Sprintf("instr %d", i), Start: i, Stages: stages(m)})
	}
	return d
}

// SuperpipelinedSuperscalar renders Figure 2-7.
func SuperpipelinedSuperscalar(degree, m, groups int) *Diagram {
	d := &Diagram{
		Title:        fmt.Sprintf("Figure 2-7: superpipelined superscalar (n=%d, m=%d)", degree, m),
		MinorPerBase: m,
	}
	for g := 0; g < groups; g++ {
		for j := 0; j < degree; j++ {
			d.Rows = append(d.Rows, Row{Label: fmt.Sprintf("instr %d", g*degree+j), Start: g, Stages: stages(m)})
		}
	}
	return d
}

// Vector renders Figure 2-8: each vector instruction issues a string of
// element operations.
func Vector(elements, instrs int) *Diagram {
	d := &Diagram{Title: fmt.Sprintf("Figure 2-8: vector execution (%d elements)", elements), MinorPerBase: 1}
	for i := 0; i < instrs; i++ {
		// Serial issue (for diagram readability, as the paper notes),
		// one element op per cycle after the pipeline fills.
		d.Rows = append(d.Rows, Row{
			Label:  fmt.Sprintf("vinstr %d", i),
			Start:  i,
			Stages: "FD" + strings.Repeat("#", elements) + "W",
		})
	}
	return d
}

// Startup renders Figure 4-2: a superscalar and a superpipelined machine,
// both of degree m, issuing a basic block of k independent instructions —
// "the superpipelined machine has a larger startup transient".
func Startup(degree, k int) *Diagram {
	d := &Diagram{
		Title:        fmt.Sprintf("Figure 4-2: start-up in superscalar vs. superpipelined (degree %d, %d independent instructions)", degree, k),
		MinorPerBase: degree,
	}
	for i := 0; i < k; i++ {
		d.Rows = append(d.Rows, Row{
			Label:  fmt.Sprintf("SS  instr %d", i),
			Start:  (i / degree) * degree, // whole base cycles
			Stages: strings.Repeat("#", degree),
		})
	}
	for i := 0; i < k; i++ {
		d.Rows = append(d.Rows, Row{
			Label:  fmt.Sprintf("SP  instr %d", i),
			Start:  i,
			Stages: strings.Repeat("#", degree),
		})
	}
	return d
}

// All returns every Section 2 figure at the paper's illustrative sizes.
func All() []*Diagram {
	return []*Diagram{
		Base(8),
		UnderpipelinedLatency(5),
		UnderpipelinedIssue(5),
		Superscalar(3, 3),
		VLIW(3, 3),
		Superpipelined(3, 8),
		SuperpipelinedSuperscalar(3, 3, 2),
		Vector(8, 3),
	}
}
