package pipeviz

import (
	"strings"
	"testing"
)

func TestBaseDiagram(t *testing.T) {
	d := Base(3)
	s := d.Render()
	if !strings.Contains(s, "Figure 2-1") {
		t.Error("title missing")
	}
	lines := strings.Split(s, "\n")
	// Three instruction rows, each one column later than the last.
	var starts []int
	for _, l := range lines {
		if strings.Contains(l, "|") && strings.Contains(l, "#") {
			starts = append(starts, strings.Index(l, "F"))
		}
	}
	if len(starts) != 3 {
		t.Fatalf("rows = %d", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] != starts[i-1]+1 {
			t.Errorf("base machine should issue one per cycle: starts %v", starts)
		}
	}
}

func TestSuperscalarGroups(t *testing.T) {
	d := Superscalar(3, 2)
	if len(d.Rows) != 6 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// First three rows share a start; the next three start one later.
	for i := 0; i < 3; i++ {
		if d.Rows[i].Start != 0 {
			t.Errorf("row %d starts at %d", i, d.Rows[i].Start)
		}
		if d.Rows[3+i].Start != 1 {
			t.Errorf("row %d starts at %d", 3+i, d.Rows[3+i].Start)
		}
	}
}

func TestSuperpipelinedSubdivision(t *testing.T) {
	d := Superpipelined(3, 4)
	if d.MinorPerBase != 3 {
		t.Errorf("minor per base = %d", d.MinorPerBase)
	}
	// Each stage occupies 3 minor columns; successive instructions start
	// one minor cycle apart.
	if len(d.Rows[0].Stages) != 12 {
		t.Errorf("stage pattern %q", d.Rows[0].Stages)
	}
	if d.Rows[1].Start-d.Rows[0].Start != 1 {
		t.Error("superpipelined issues once per minor cycle")
	}
}

func TestUnderpipelinedVariants(t *testing.T) {
	lat := UnderpipelinedLatency(3)
	iss := UnderpipelinedIssue(3)
	// Both issue every other base cycle.
	if lat.Rows[1].Start != 2 || iss.Rows[1].Start != 2 {
		t.Error("underpipelined machines must issue every other cycle")
	}
	if !strings.Contains(lat.Rows[0].Stages, "##") {
		t.Error("latency variant should show a two-cycle execute")
	}
}

func TestStartupFigure(t *testing.T) {
	d := Startup(3, 6)
	// Superscalar rows: two groups of three (starts 0,0,0,3,3,3 in minor
	// cycles with 3 minors per base).
	for i := 0; i < 3; i++ {
		if d.Rows[i].Start != 0 {
			t.Errorf("SS row %d start %d", i, d.Rows[i].Start)
		}
		if d.Rows[3+i].Start != 3 {
			t.Errorf("SS row %d start %d", 3+i, d.Rows[3+i].Start)
		}
	}
	// Superpipelined rows trail one minor cycle apart; the last issues at
	// minor 5 = base 5/3, the paper's t(5/3).
	sp := d.Rows[6:]
	if sp[5].Start != 5 {
		t.Errorf("SP last instruction issues at %d, want 5", sp[5].Start)
	}
}

func TestAllRenders(t *testing.T) {
	for _, d := range All() {
		s := d.Render()
		if !strings.Contains(s, "#") || !strings.Contains(s, "Figure") {
			t.Errorf("%s: bad rendering", d.Title)
		}
	}
}

func TestVLIWAndVector(t *testing.T) {
	v := VLIW(3, 2)
	if len(v.Rows) != 6 {
		t.Errorf("VLIW rows = %d", len(v.Rows))
	}
	vec := Vector(8, 2)
	if !strings.Contains(vec.Rows[0].Stages, strings.Repeat("#", 8)) {
		t.Error("vector instruction should execute an element string")
	}
}
