package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"ilp/internal/ilperr"
)

func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestNilInjectorIsNoOp: the production configuration injects nothing.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	for _, site := range Sites() {
		if err := in.Fail(site, "k", 0); err != nil {
			t.Errorf("nil injector injected at %s: %v", site, err)
		}
	}
	if in.ShouldPanic("k", 0) {
		t.Error("nil injector panicked")
	}
	if d := in.SlowDelay("k", 0); d != 0 {
		t.Errorf("nil injector slowed by %v", d)
	}
}

// TestDeterministic: the decision is a pure function of
// (seed, site, key, attempt) — same inputs, same verdict, every time and
// from every goroutine.
func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rates: map[Site]float64{SiteCompile: 0.5, SiteSim: 0.5}}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	type verdict struct {
		site    Site
		key     string
		attempt int
		fired   bool
	}
	var want []verdict
	for _, site := range []Site{SiteCompile, SiteSim} {
		for k := 0; k < 20; k++ {
			for attempt := 0; attempt < 4; attempt++ {
				key := fmt.Sprintf("key%d", k)
				want = append(want, verdict{site, key, attempt, a.Fail(site, key, attempt) != nil})
			}
		}
	}
	// Replay on a second injector, concurrently, in arbitrary order.
	var wg sync.WaitGroup
	for _, v := range want {
		wg.Add(1)
		go func(v verdict) {
			defer wg.Done()
			if got := b.Fail(v.site, v.key, v.attempt) != nil; got != v.fired {
				t.Errorf("(%s,%s,%d): fired=%v, want %v", v.site, v.key, v.attempt, got, v.fired)
			}
		}(v)
	}
	wg.Wait()
}

// TestSeedsDiffer: different seeds give different schedules.
func TestSeedsDiffer(t *testing.T) {
	a := mustNew(t, Config{Seed: 1, Rates: map[Site]float64{SiteSim: 0.5}})
	b := mustNew(t, Config{Seed: 2, Rates: map[Site]float64{SiteSim: 0.5}})
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if (a.Fail(SiteSim, key, 0) != nil) == (b.Fail(SiteSim, key, 0) != nil) {
			same++
		}
	}
	if same == n {
		t.Fatal("two seeds produced identical schedules")
	}
}

// TestAttemptIndependence: a fault on attempt 0 does not imply a fault on
// attempt 1 — retries can succeed, which the retry policy depends on.
func TestAttemptIndependence(t *testing.T) {
	in := mustNew(t, Config{Seed: 7, Rates: map[Site]float64{SiteSim: 0.5}})
	recovered := false
	for i := 0; i < 100 && !recovered; i++ {
		key := fmt.Sprintf("k%d", i)
		if in.Fail(SiteSim, key, 0) != nil && in.Fail(SiteSim, key, 1) == nil {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no key failed attempt 0 then passed attempt 1 in 100 keys at rate 0.5")
	}
}

// TestRateCalibration: observed firing frequency tracks the configured
// rate (loose tolerance — the roll is a hash, not a perfect PRNG).
func TestRateCalibration(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.5, 0.9, 1} {
		in := mustNew(t, Config{Seed: 3, Rates: map[Site]float64{SiteSim: rate}})
		fired := 0
		const n = 2000
		for i := 0; i < n; i++ {
			if in.Fail(SiteSim, fmt.Sprintf("k%d", i), 0) != nil {
				fired++
			}
		}
		got := float64(fired) / n
		if math.Abs(got-rate) > 0.05 {
			t.Errorf("rate %v: observed %.3f", rate, got)
		}
	}
}

// TestFaultClassification: injected faults match ErrInjected and classify
// transient under the ilperr taxonomy, including when wrapped the way the
// runner wraps them.
func TestFaultClassification(t *testing.T) {
	in := mustNew(t, Config{Seed: 5, Rates: map[Site]float64{SiteStore: 1}})
	err := in.Fail(SiteStore, "k", 0)
	if err == nil {
		t.Fatal("rate-1 site did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("fault does not match ErrInjected: %v", err)
	}
	if !ilperr.IsTransient(err) {
		t.Fatalf("fault not transient: %v", err)
	}
	wrapped := &ilperr.SimError{Benchmark: "whet", Machine: "m", Err: err}
	if !ilperr.IsTransient(wrapped) {
		t.Fatalf("wrapped fault lost transience: %v", wrapped)
	}
	if ilperr.IsTransient(ilperr.MarkPermanent(wrapped)) {
		t.Fatal("MarkPermanent did not override the fault's transience")
	}
	var f *Fault
	if !errors.As(err, &f) || f.Site != SiteStore || f.Key != "k" {
		t.Fatalf("fault coordinates lost: %v", err)
	}
}

// TestSlowDelay: fires only with a positive SlowDelay and a SiteSlow rate.
func TestSlowDelay(t *testing.T) {
	in := mustNew(t, Config{Seed: 9, Rates: map[Site]float64{SiteSlow: 1}, SlowDelay: 3 * time.Millisecond})
	if d := in.SlowDelay("k", 0); d != 3*time.Millisecond {
		t.Fatalf("SlowDelay = %v, want 3ms", d)
	}
	noDelay := mustNew(t, Config{Seed: 9, Rates: map[Site]float64{SiteSlow: 1}})
	if d := noDelay.SlowDelay("k", 0); d != 0 {
		t.Fatalf("zero SlowDelay still stalled %v", d)
	}
}

// TestNewRejectsBadConfig: out-of-range rates and unknown sites are
// configuration errors, not silent no-ops.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Rates: map[Site]float64{SiteSim: 1.5}}); err == nil {
		t.Error("rate 1.5 accepted")
	}
	if _, err := New(Config{Rates: map[Site]float64{SiteSim: -0.1}}); err == nil {
		t.Error("rate -0.1 accepted")
	}
	if _, err := New(Config{Rates: map[Site]float64{"bogus": 0.5}}); err == nil {
		t.Error("unknown site accepted")
	}
}

// TestConfigIsolation: mutating the caller's Rates map after New does not
// change the injector's schedule.
func TestConfigIsolation(t *testing.T) {
	rates := map[Site]float64{SiteSim: 1}
	in := mustNew(t, Config{Seed: 1, Rates: rates})
	rates[SiteSim] = 0
	if in.Fail(SiteSim, "k", 0) == nil {
		t.Fatal("injector shares the caller's Rates map")
	}
}

// TestSlowHonorsCancellation: an injected stall must end the moment its
// context does, returning the recorded cause — an injected hang can never
// pin a worker past a revoked lease.
func TestSlowHonorsCancellation(t *testing.T) {
	in := mustNew(t, Config{Seed: 9, Rates: map[Site]float64{SiteSlow: 1}, SlowDelay: time.Hour})
	cause := errors.New("lease revoked")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel(cause)
	}()
	start := time.Now()
	err := in.Slow(ctx, "k", 0)
	if !errors.Is(err, cause) {
		t.Fatalf("Slow under cancellation returned %v, want the cause", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Slow ignored cancellation for %v", waited)
	}

	// Already-cancelled context: prompt return even when no stall fires.
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	cancel2(cause)
	var nilInj *Injector
	if err := nilInj.Slow(ctx2, "k", 0); !errors.Is(err, cause) {
		t.Fatalf("nil injector on dead ctx: %v, want the cause", err)
	}
}

// TestSlowCompletesWithoutCancellation: the stall actually happens and
// returns nil on a live context.
func TestSlowCompletesWithoutCancellation(t *testing.T) {
	in := mustNew(t, Config{Seed: 9, Rates: map[Site]float64{SiteSlow: 1}, SlowDelay: 2 * time.Millisecond})
	start := time.Now()
	if err := in.Slow(context.Background(), "k", 0); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("Slow returned before the injected delay elapsed")
	}
}

// TestFires: the exported probe matches the private decision and stays
// deterministic; nil injectors never fire; rate-1 worker sites always do.
func TestFires(t *testing.T) {
	in := mustNew(t, Config{Seed: 3, Rates: map[Site]float64{SiteWorkerKill: 1, SiteWorkerHang: 0}})
	if !in.Fires(SiteWorkerKill, "shard0/2", 1) {
		t.Fatal("rate-1 site did not fire")
	}
	if in.Fires(SiteWorkerHang, "shard0/2", 1) {
		t.Fatal("rate-0 site fired")
	}
	var nilInj *Injector
	if nilInj.Fires(SiteWorkerKill, "k", 0) {
		t.Fatal("nil injector fired")
	}
	for i := 0; i < 4; i++ {
		if in.Fires(SiteWorkerKill, "shard1/5", 2) != in.Fires(SiteWorkerKill, "shard1/5", 2) {
			t.Fatal("Fires is not deterministic")
		}
	}
}

// TestParse: the spec grammar covers seed, slowdelay, and every site —
// including the fabric's worker sites — and rejects nonsense.
func TestParse(t *testing.T) {
	if inj, err := Parse(""); err != nil || inj != nil {
		t.Fatalf("empty spec: %v %v", inj, err)
	}
	inj, err := Parse("seed=7,sim=0.5,workerkill=1,workerhang=0.5,workertear=0.25,slowdelay=2ms,slow=1")
	if err != nil || inj == nil {
		t.Fatalf("full spec rejected: %v", err)
	}
	if !inj.Fires(SiteWorkerKill, "shard0/0", 0) {
		t.Fatal("parsed rate-1 workerkill does not fire")
	}
	for _, bad := range []string{
		"sim", "sim=abc", "seed=x", "bogus=0.5", "sim=1.5", "slowdelay=fast", "workerkill=2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
