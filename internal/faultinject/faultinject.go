// Package faultinject is the deterministic fault-injection harness behind
// the experiment pipeline's chaos tests. An Injector decides, per pipeline
// site and per attempt, whether to inject a failure — and the decision is a
// pure function of (seed, site, key, attempt), independent of goroutine
// scheduling, wall-clock time, or call order. The same seed therefore
// produces the same fault schedule whether the sweep runs on one worker or
// sixteen, which is what lets the chaos suite replay a failing schedule
// under -race and assert exact recovery behavior.
//
// The zero value — a nil *Injector — is the production configuration: every
// probe is a no-op that injects nothing, so the pipeline pays one nil check
// per site and no hashing.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// Site names a pipeline point where a fault can be injected.
type Site string

// The injectable sites, covering every failure mode the runner's retry and
// degradation machinery must survive.
const (
	// SiteCompile fails a compile attempt with a transient error.
	SiteCompile Site = "compile"
	// SiteSim fails a simulation attempt with a transient error.
	SiteSim Site = "sim"
	// SitePanic panics the worker mid-measurement (always permanent).
	SitePanic Site = "panic"
	// SiteStore fails the result-store append with a transient error.
	SiteStore Site = "store"
	// SiteSlow delays a job by the injector's SlowDelay before it runs.
	SiteSlow Site = "slow"

	// The process-level sites of the sweep fabric's chaos harness. The
	// injector only decides (via Fires); the shard worker performs the
	// action, because only it can SIGKILL itself or tear its own store.

	// SiteWorkerKill SIGKILLs the worker process right after a cell
	// commits — the crash-anywhere probe of the fabric chaos suite.
	SiteWorkerKill Site = "workerkill"
	// SiteWorkerHang makes the worker stop heartbeating and hang, so the
	// coordinator's lease expiry (not process death) must recover it.
	SiteWorkerHang Site = "workerhang"
	// SiteWorkerTear appends a torn partial line to the worker's shard
	// store and then SIGKILLs it, exercising the CRC tail repair on the
	// next open.
	SiteWorkerTear Site = "workertear"
)

// Sites lists every injectable site.
func Sites() []Site {
	return []Site{SiteCompile, SiteSim, SitePanic, SiteStore, SiteSlow,
		SiteWorkerKill, SiteWorkerHang, SiteWorkerTear}
}

// ErrInjected marks errors produced by the injector, so tests can tell an
// injected fault from an organic failure with errors.Is.
var ErrInjected = errors.New("injected fault")

// Fault is the error an Injector returns at a failing site. It classifies
// transient — injected faults model recoverable infrastructure failures, so
// the retry policy should retry them — except at SitePanic, which does not
// return a Fault at all (the site panics instead, and panics are permanent
// by the ilperr taxonomy).
type Fault struct {
	Site    Site
	Key     string
	Attempt int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%v: %s at %s (attempt %d)", ErrInjected, f.Site, f.Key, f.Attempt)
}

func (f *Fault) Unwrap() error { return ErrInjected }

// Transient reports true: injected faults stand in for recoverable
// infrastructure failures.
func (f *Fault) Transient() bool { return true }

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every injection decision. Two injectors with the same
	// Seed and Rates produce identical fault schedules.
	Seed int64
	// Rates maps each site to its injection probability in [0, 1].
	// Absent sites never fire.
	Rates map[Site]float64
	// SlowDelay is how long SiteSlow stalls a job. Zero disables slowness
	// even if SiteSlow has a rate.
	SlowDelay time.Duration
}

// Injector decides fault injection deterministically. All methods are safe
// on a nil receiver (no-op) and safe for concurrent use: an Injector is
// immutable after New.
type Injector struct {
	cfg Config
}

// New builds an Injector. Rates are clamped to [0, 1].
func New(cfg Config) (*Injector, error) {
	for site, rate := range cfg.Rates {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: rate %v for site %q outside [0,1]", rate, site)
		}
		if !knownSite(site) {
			return nil, fmt.Errorf("faultinject: unknown site %q", site)
		}
	}
	rates := make(map[Site]float64, len(cfg.Rates))
	for site, rate := range cfg.Rates {
		rates[site] = rate
	}
	cfg.Rates = rates
	return &Injector{cfg: cfg}, nil
}

// roll produces a uniform-looking value in [0, 1) from the decision
// coordinate. FNV-1a over the packed coordinate is cheap, stateless, and —
// unlike a shared *rand.Rand — gives every (site, key, attempt) its own
// draw regardless of the order goroutines reach it.
func (in *Injector) roll(site Site, key string, attempt int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], uint64(in.cfg.Seed))
	h.Write(buf[:])
	h.Write([]byte(site))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	putUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	// 53 bits of the hash → float64 in [0, 1).
	return float64(h.Sum64()>>11) / (1 << 53)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// should reports whether the site fires for this coordinate.
func (in *Injector) should(site Site, key string, attempt int) bool {
	if in == nil {
		return false
	}
	rate, ok := in.cfg.Rates[site]
	if !ok || rate <= 0 {
		return false
	}
	return in.roll(site, key, attempt) < rate
}

// Fail returns an injected *Fault if the site fires for (key, attempt),
// nil otherwise. Used at SiteCompile, SiteSim, and SiteStore.
func (in *Injector) Fail(site Site, key string, attempt int) error {
	if !in.should(site, key, attempt) {
		return nil
	}
	return &Fault{Site: site, Key: key, Attempt: attempt}
}

// ShouldPanic reports whether the worker should panic for (key, attempt).
// The caller performs the panic so the stack names the real site.
func (in *Injector) ShouldPanic(key string, attempt int) bool {
	return in.should(SitePanic, key, attempt)
}

// SlowDelay returns the stall to apply before running (key, attempt), or
// zero. The delay is the configured SlowDelay when SiteSlow fires.
func (in *Injector) SlowDelay(key string, attempt int) time.Duration {
	if in == nil || in.cfg.SlowDelay <= 0 {
		return 0
	}
	if !in.should(SiteSlow, key, attempt) {
		return 0
	}
	return in.cfg.SlowDelay
}

// Slow applies the SiteSlow stall for (key, attempt), honoring context
// cancellation: an injected hang ends the moment ctx does — it can never
// outlive a revoked lease or a cancelled sweep — and the cancellation
// cause (not a bare context error) is returned so sibling-failure
// attribution upstream keeps working.
func (in *Injector) Slow(ctx context.Context, key string, attempt int) error {
	d := in.SlowDelay(key, attempt)
	if d <= 0 {
		if ctx.Err() != nil {
			return ctxCause(ctx)
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctxCause(ctx)
	}
}

// ctxCause mirrors the experiment pipeline's cancellation spelling: the
// recorded cause when one exists, the plain context error otherwise.
func ctxCause(ctx context.Context) error {
	if c := context.Cause(ctx); c != nil {
		return c
	}
	return ctx.Err()
}

// Fires reports whether the named site fires for (key, attempt). It is
// the generic probe for sites whose action lives in the caller — the
// fabric worker's kill/hang/tear sites — and is deterministic in
// (seed, site, key, attempt) like every other decision.
func (in *Injector) Fires(site Site, key string, attempt int) bool {
	return in.should(site, key, attempt)
}

// knownSite reports whether site is one of Sites().
func knownSite(site Site) bool {
	for _, s := range Sites() {
		if s == site {
			return true
		}
	}
	return false
}

// Parse builds an Injector from a textual spec: comma-separated key=value
// pairs where the keys are "seed" (int64), "slowdelay" (a duration), and
// any site name (its injection rate in [0,1]). The empty spec is the
// production configuration: a nil injector that injects nothing. This is
// the one parser behind ilpbench -faults, ilpfab -faults, and the fabric
// worker spec, so every surface spells fault schedules identically.
func Parse(spec string) (*Injector, error) {
	if spec == "" {
		return nil, nil
	}
	cfg := Config{Rates: map[Site]float64{}}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("%q is not key=value", kv)
		}
		switch {
		case k == "seed":
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed %q: %v", v, err)
			}
			cfg.Seed = seed
		case k == "slowdelay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("slowdelay %q: %v", v, err)
			}
			cfg.SlowDelay = d
		case knownSite(Site(k)):
			rate, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("rate %q for %s: %v", v, k, err)
			}
			cfg.Rates[Site(k)] = rate
		default:
			return nil, fmt.Errorf("unknown key %q (want seed, slowdelay, or a site: %s)", k, siteList())
		}
	}
	return New(cfg)
}

// siteList renders the site names for error messages.
func siteList() string {
	var names []string
	for _, s := range Sites() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}
