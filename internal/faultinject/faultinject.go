// Package faultinject is the deterministic fault-injection harness behind
// the experiment pipeline's chaos tests. An Injector decides, per pipeline
// site and per attempt, whether to inject a failure — and the decision is a
// pure function of (seed, site, key, attempt), independent of goroutine
// scheduling, wall-clock time, or call order. The same seed therefore
// produces the same fault schedule whether the sweep runs on one worker or
// sixteen, which is what lets the chaos suite replay a failing schedule
// under -race and assert exact recovery behavior.
//
// The zero value — a nil *Injector — is the production configuration: every
// probe is a no-op that injects nothing, so the pipeline pays one nil check
// per site and no hashing.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Site names a pipeline point where a fault can be injected.
type Site string

// The injectable sites, covering every failure mode the runner's retry and
// degradation machinery must survive.
const (
	// SiteCompile fails a compile attempt with a transient error.
	SiteCompile Site = "compile"
	// SiteSim fails a simulation attempt with a transient error.
	SiteSim Site = "sim"
	// SitePanic panics the worker mid-measurement (always permanent).
	SitePanic Site = "panic"
	// SiteStore fails the result-store append with a transient error.
	SiteStore Site = "store"
	// SiteSlow delays a job by the injector's SlowDelay before it runs.
	SiteSlow Site = "slow"
)

// Sites lists every injectable site.
func Sites() []Site {
	return []Site{SiteCompile, SiteSim, SitePanic, SiteStore, SiteSlow}
}

// ErrInjected marks errors produced by the injector, so tests can tell an
// injected fault from an organic failure with errors.Is.
var ErrInjected = errors.New("injected fault")

// Fault is the error an Injector returns at a failing site. It classifies
// transient — injected faults model recoverable infrastructure failures, so
// the retry policy should retry them — except at SitePanic, which does not
// return a Fault at all (the site panics instead, and panics are permanent
// by the ilperr taxonomy).
type Fault struct {
	Site    Site
	Key     string
	Attempt int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%v: %s at %s (attempt %d)", ErrInjected, f.Site, f.Key, f.Attempt)
}

func (f *Fault) Unwrap() error { return ErrInjected }

// Transient reports true: injected faults stand in for recoverable
// infrastructure failures.
func (f *Fault) Transient() bool { return true }

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every injection decision. Two injectors with the same
	// Seed and Rates produce identical fault schedules.
	Seed int64
	// Rates maps each site to its injection probability in [0, 1].
	// Absent sites never fire.
	Rates map[Site]float64
	// SlowDelay is how long SiteSlow stalls a job. Zero disables slowness
	// even if SiteSlow has a rate.
	SlowDelay time.Duration
}

// Injector decides fault injection deterministically. All methods are safe
// on a nil receiver (no-op) and safe for concurrent use: an Injector is
// immutable after New.
type Injector struct {
	cfg Config
}

// New builds an Injector. Rates are clamped to [0, 1].
func New(cfg Config) (*Injector, error) {
	for site, rate := range cfg.Rates {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: rate %v for site %q outside [0,1]", rate, site)
		}
		switch site {
		case SiteCompile, SiteSim, SitePanic, SiteStore, SiteSlow:
		default:
			return nil, fmt.Errorf("faultinject: unknown site %q", site)
		}
	}
	rates := make(map[Site]float64, len(cfg.Rates))
	for site, rate := range cfg.Rates {
		rates[site] = rate
	}
	cfg.Rates = rates
	return &Injector{cfg: cfg}, nil
}

// roll produces a uniform-looking value in [0, 1) from the decision
// coordinate. FNV-1a over the packed coordinate is cheap, stateless, and —
// unlike a shared *rand.Rand — gives every (site, key, attempt) its own
// draw regardless of the order goroutines reach it.
func (in *Injector) roll(site Site, key string, attempt int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], uint64(in.cfg.Seed))
	h.Write(buf[:])
	h.Write([]byte(site))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	putUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	// 53 bits of the hash → float64 in [0, 1).
	return float64(h.Sum64()>>11) / (1 << 53)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// should reports whether the site fires for this coordinate.
func (in *Injector) should(site Site, key string, attempt int) bool {
	if in == nil {
		return false
	}
	rate, ok := in.cfg.Rates[site]
	if !ok || rate <= 0 {
		return false
	}
	return in.roll(site, key, attempt) < rate
}

// Fail returns an injected *Fault if the site fires for (key, attempt),
// nil otherwise. Used at SiteCompile, SiteSim, and SiteStore.
func (in *Injector) Fail(site Site, key string, attempt int) error {
	if !in.should(site, key, attempt) {
		return nil
	}
	return &Fault{Site: site, Key: key, Attempt: attempt}
}

// ShouldPanic reports whether the worker should panic for (key, attempt).
// The caller performs the panic so the stack names the real site.
func (in *Injector) ShouldPanic(key string, attempt int) bool {
	return in.should(SitePanic, key, attempt)
}

// SlowDelay returns the stall to apply before running (key, attempt), or
// zero. The delay is the configured SlowDelay when SiteSlow fires.
func (in *Injector) SlowDelay(key string, attempt int) time.Duration {
	if in == nil || in.cfg.SlowDelay <= 0 {
		return 0
	}
	if !in.should(SiteSlow, key, attempt) {
		return 0
	}
	return in.cfg.SlowDelay
}
