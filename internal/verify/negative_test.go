// Negative tests: hand-corrupted programs the verifier must reject, each
// with the expected diagnostic code. The corruptions mirror real
// miscompilation modes: a scheduler that swaps dependent instructions, a
// register allocator that invents registers or lets a call clobber a live
// temporary, a code generator that drops a label or falls off a function.
//
// Together with timing_test.go (the V4xx static timing oracle and the V108
// opcode-table pin) every diagnostic code the package declares has at least
// one test that triggers it — TestEveryCodeHasNegativeTest enforces the
// inventory, so adding a code without a negative test fails here.
package verify_test

import (
	"testing"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/machine"
	"ilp/internal/verify"
)

// prog assembles a minimal program: the given instructions under a single
// "_start" entry label, with optional extra labels.
func prog(instrs []isa.Instr, labels map[int]string) *isa.Program {
	symbols := map[int]string{0: "_start"}
	for i, l := range labels {
		symbols[i] = l
	}
	return &isa.Program{Instrs: instrs, Symbols: symbols}
}

// i is shorthand for building instructions with unused operands marked.
func i(op isa.Opcode, dst, src1, src2 isa.Reg, imm int64) isa.Instr {
	return isa.Instr{Op: op, Dst: dst, Src1: src1, Src2: src2, Imm: imm}
}

const no = isa.NoReg

func TestNegativeStructuralAndDataflow(t *testing.T) {
	cfg := machine.Base() // 16 temps + 26 homes per file: pool r10..r51
	halt := i(isa.OpHalt, no, no, no, 0)

	cases := []struct {
		name string
		p    *isa.Program
		mem  []ir.MemRef // nil: skip annotation checks
		want verify.Code
	}{
		{
			name: "out-of-range register (outside temp/home split)",
			p: prog([]isa.Instr{
				i(isa.OpLi, isa.R(55), no, no, 1), // r55 > r51, not a convention
				halt,
			}, nil),
			want: verify.CodeBadRegSplit,
		},
		{
			name: "reserved register r61",
			p: prog([]isa.Instr{
				i(isa.OpLi, isa.R(61), no, no, 1),
				halt,
			}, nil),
			want: verify.CodeBadRegSplit,
		},
		{
			name: "dangling branch target",
			p: prog([]isa.Instr{
				{Op: isa.OpJ, Dst: no, Src1: no, Src2: no, Target: 99},
				halt,
			}, nil),
			want: verify.CodeBadTarget,
		},
		{
			name: "branch to unlabeled instruction",
			p: prog([]isa.Instr{
				i(isa.OpLi, isa.R(10), no, no, 1),
				{Op: isa.OpBeq, Dst: no, Src1: isa.R(10), Src2: isa.RZero, Target: 3},
				halt,
				i(isa.OpLi, isa.R(10), no, no, 2), // no label here
				halt,
			}, nil),
			want: verify.CodeBadTarget,
		},
		{
			name: "call into a basic block",
			p: prog([]isa.Instr{
				{Op: isa.OpJal, Dst: isa.RRA, Src1: no, Src2: no, Target: 2, Sym: "f"},
				halt,
				i(isa.OpJr, no, isa.RRA, no, 0),
			}, map[int]string{2: "f.b0"}),
			want: verify.CodeBadCall,
		},
		{
			name: "missing operand",
			p: prog([]isa.Instr{
				i(isa.OpAdd, isa.R(10), isa.R(11), no, 0), // add needs two sources
				halt,
			}, nil),
			want: verify.CodeBadOperand,
		},
		{
			name: "operand in wrong register file",
			p: prog([]isa.Instr{
				i(isa.OpFadd, isa.F(10), isa.F(11), isa.R(11), 0),
				halt,
			}, nil),
			want: verify.CodeBadOperand,
		},
		{
			name: "bad opcode",
			p: prog([]isa.Instr{
				i(isa.Opcode(200), no, no, no, 0),
				halt,
			}, nil),
			want: verify.CodeBadOpcode,
		},
		{
			name: "fallthrough off the end of a function",
			p: prog([]isa.Instr{
				{Op: isa.OpJal, Dst: isa.RRA, Src1: no, Src2: no, Target: 2, Sym: "f"},
				halt,
				i(isa.OpAddi, isa.R(10), isa.RZero, no, 1), // f never returns
			}, map[int]string{2: "f"}),
			want: verify.CodeFallthrough,
		},
		{
			name: "entry out of range",
			p: &isa.Program{
				Instrs: []isa.Instr{halt},
				Entry:  7,
			},
			want: verify.CodeBadEntry,
		},
		{
			name: "use before def",
			p: prog([]isa.Instr{
				i(isa.OpAdd, isa.R(11), isa.R(10), isa.R(10), 0), // r10 never written
				halt,
			}, nil),
			want: verify.CodeUseBeforeDef,
		},
		{
			name: "use before def on one path only",
			p: prog([]isa.Instr{
				{Op: isa.OpBeq, Dst: no, Src1: isa.RZero, Src2: isa.RZero, Target: 2},
				i(isa.OpLi, isa.R(10), no, no, 1), // skipped when branch taken
				i(isa.OpMov, isa.R(11), isa.R(10), no, 0),
				halt,
			}, map[int]string{2: "_start.b1"}),
			want: verify.CodeUseBeforeDef,
		},
		{
			name: "temporary clobbered across call",
			p: prog([]isa.Instr{
				i(isa.OpLi, isa.R(10), no, no, 5),
				{Op: isa.OpJal, Dst: isa.RRA, Src1: no, Src2: no, Target: 4, Sym: "f"},
				i(isa.OpPrinti, no, isa.R(10), no, 0), // r10 did not survive the call
				halt,
				i(isa.OpJr, no, isa.RRA, no, 0),
			}, map[int]string{4: "f"}),
			mem:  []ir.MemRef{{}, {}, {Kind: ir.MemOut}, {}, {}},
			want: verify.CodeCallClobber,
		},
		{
			name: "dead store to a temporary",
			p: prog([]isa.Instr{
				i(isa.OpLi, isa.R(10), no, no, 1), // overwritten unread
				i(isa.OpLi, isa.R(10), no, no, 2),
				i(isa.OpPrinti, no, isa.R(10), no, 0),
				halt,
			}, nil),
			mem:  []ir.MemRef{{}, {}, {Kind: ir.MemOut}, {}},
			want: verify.CodeDeadStore,
		},
		{
			name: "memory instruction without annotation",
			p: prog([]isa.Instr{
				i(isa.OpLi, isa.R(10), no, no, 0),
				i(isa.OpLw, isa.R(11), isa.R(10), no, 0),
				halt,
			}, nil),
			mem:  []ir.MemRef{{}, {}, {}}, // lw missing its MemRef
			want: verify.CodeBadMemAnnot,
		},
		{
			name: "annotation array of the wrong length",
			p: prog([]isa.Instr{
				halt,
			}, nil),
			mem:  []ir.MemRef{{}, {}},
			want: verify.CodeBadMemAnnot,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := verify.Check(tc.p, verify.Options{Machine: cfg, Mem: tc.mem})
			for _, d := range diags {
				if d.Code == tc.want {
					return
				}
			}
			t.Fatalf("want diagnostic %s, got %v", tc.want, diags)
		})
	}
}

// TestNegativeSchedule corrupts schedules and expects the legality checker
// to reject them.
func TestNegativeSchedule(t *testing.T) {
	halt := i(isa.OpHalt, no, no, no, 0)
	// A RAW-dependent pair followed by a store/load pair on the same
	// scalar: both orderings matter.
	sym := &ast.Symbol{Name: "x", Kind: ast.SymGlobal}
	pre := []isa.Instr{
		i(isa.OpLi, isa.R(10), no, no, 7),
		i(isa.OpAddi, isa.R(11), isa.R(10), no, 1), // RAW on r10
		i(isa.OpSw, no, isa.RZero, isa.R(11), 0),   // store x
		i(isa.OpLw, isa.R(12), isa.RZero, no, 0),   // load x (must stay after)
		i(isa.OpPrinti, no, isa.R(12), no, 0),
		halt,
	}
	mem := []ir.MemRef{{}, {}, {Kind: ir.MemScalar, Sym: sym}, {Kind: ir.MemScalar, Sym: sym}, {Kind: ir.MemOut}, {}}
	blockStarts := []int{0}

	legal := func() ([]isa.Instr, []ir.MemRef) {
		return append([]isa.Instr(nil), pre...), append([]ir.MemRef(nil), mem...)
	}

	t.Run("identity schedule is legal", func(t *testing.T) {
		post, postMem := legal()
		if diags := verify.CheckSchedule(pre, post, mem, postMem, blockStarts, false, "sched"); len(diags) != 0 {
			t.Fatalf("unexpected diagnostics: %v", diags)
		}
	})

	t.Run("independent reorder is legal", func(t *testing.T) {
		pre2 := []isa.Instr{
			i(isa.OpLi, isa.R(10), no, no, 1),
			i(isa.OpLi, isa.R(11), no, no, 2),
			halt,
		}
		mem2 := []ir.MemRef{{}, {}, {}}
		post2 := []isa.Instr{pre2[1], pre2[0], pre2[2]}
		postMem2 := []ir.MemRef{{}, {}, {}}
		if diags := verify.CheckSchedule(pre2, post2, mem2, postMem2, []int{0}, false, "sched"); len(diags) != 0 {
			t.Fatalf("unexpected diagnostics: %v", diags)
		}
	})

	t.Run("swapped dependent instructions", func(t *testing.T) {
		post, postMem := legal()
		post[0], post[1] = post[1], post[0] // consumer before producer
		postMem[0], postMem[1] = postMem[1], postMem[0]
		wantCode(t, verify.CheckSchedule(pre, post, mem, postMem, blockStarts, false, "sched"), verify.CodeSchedDep)
	})

	t.Run("load hoisted above conflicting store", func(t *testing.T) {
		post, postMem := legal()
		post[2], post[3] = post[3], post[2]
		postMem[2], postMem[3] = postMem[3], postMem[2]
		wantCode(t, verify.CheckSchedule(pre, post, mem, postMem, blockStarts, false, "sched"), verify.CodeSchedDep)
	})

	t.Run("instruction rewritten", func(t *testing.T) {
		post, postMem := legal()
		post[0].Imm = 8 // same opcode, different constant
		wantCode(t, verify.CheckSchedule(pre, post, mem, postMem, blockStarts, false, "sched"), verify.CodeSchedContent)
	})

	t.Run("barrier moved", func(t *testing.T) {
		post, postMem := legal()
		post[4], post[5] = post[5], post[4] // halt swapped with printi
		postMem[4], postMem[5] = postMem[5], postMem[4]
		wantCode(t, verify.CheckSchedule(pre, post, mem, postMem, blockStarts, false, "sched"), verify.CodeSchedShape)
	})

	t.Run("instruction dropped", func(t *testing.T) {
		post, postMem := legal()
		wantCode(t, verify.CheckSchedule(pre, post[:5], mem, postMem[:5], blockStarts, false, "sched"), verify.CodeSchedShape)
	})

	t.Run("pass provenance is stamped", func(t *testing.T) {
		post, postMem := legal()
		post[0], post[1] = post[1], post[0]
		postMem[0], postMem[1] = postMem[1], postMem[0]
		diags := verify.CheckSchedule(pre, post, mem, postMem, blockStarts, false, "sched")
		if len(diags) == 0 || diags[0].Pass != "sched" {
			t.Fatalf("want pass \"sched\" on diagnostics, got %v", diags)
		}
	})
}

// TestEveryCodeHasNegativeTest is the inventory: every diagnostic code the
// package declares must be claimed by a negative test somewhere in the
// suite. The map is maintained by hand next to the tests themselves; a new
// code shows up here as a missing entry.
func TestEveryCodeHasNegativeTest(t *testing.T) {
	covered := map[verify.Code]string{
		verify.CodeBadEntry:    "TestNegativeStructuralAndDataflow/entry_out_of_range",
		verify.CodeBadOpcode:   "TestNegativeStructuralAndDataflow/bad_opcode",
		verify.CodeBadOperand:  "TestNegativeStructuralAndDataflow/missing_operand",
		verify.CodeBadRegSplit: "TestNegativeStructuralAndDataflow/out-of-range_register",
		verify.CodeBadTarget:   "TestNegativeStructuralAndDataflow/dangling_branch_target",
		verify.CodeBadCall:     "TestNegativeStructuralAndDataflow/call_into_a_basic_block",
		verify.CodeFallthrough: "TestNegativeStructuralAndDataflow/fallthrough",
		// V108 guards the opcode table itself, not programs; it is pinned by
		// TestAllOpcodesClassified in timing_test.go.
		verify.CodeBadClass:         "TestAllOpcodesClassified",
		verify.CodeBadMemAnnot:      "TestNegativeStructuralAndDataflow/memory_instruction_without_annotation",
		verify.CodeUseBeforeDef:     "TestNegativeStructuralAndDataflow/use_before_def",
		verify.CodeCallClobber:      "TestNegativeStructuralAndDataflow/temporary_clobbered_across_call",
		verify.CodeDeadStore:        "TestNegativeStructuralAndDataflow/dead_store",
		verify.CodeSchedContent:     "TestNegativeSchedule/instruction_rewritten",
		verify.CodeSchedDep:         "TestNegativeSchedule/swapped_dependent_instructions",
		verify.CodeSchedShape:       "TestNegativeSchedule/barrier_moved",
		verify.CodeTimingBelowLower: "TestTimingNegative/below_lower_bound",
		verify.CodeTimingAboveUpper: "TestTimingNegative/above_upper_bound",
		verify.CodeTimingInternal:   "TestTimingInternalInconsistency",
	}
	for _, c := range verify.AllCodes() {
		if covered[c] == "" {
			t.Errorf("diagnostic %s has no negative test claiming it", c)
		}
	}
	if len(covered) != len(verify.AllCodes()) {
		t.Errorf("inventory lists %d codes, package declares %d", len(covered), len(verify.AllCodes()))
	}
}

func wantCode(t *testing.T, diags []verify.Diagnostic, want verify.Code) {
	t.Helper()
	for _, d := range diags {
		if d.Code == want {
			return
		}
	}
	t.Fatalf("want diagnostic %s, got %v", want, diags)
}
