package verify

import (
	"math"

	"ilp/internal/compiler/sched"
	"ilp/internal/ir"
	"ilp/internal/isa"
)

// CheckSchedule is the translation-validation half of the verifier: given
// the instruction stream before and after the pipeline scheduler ran (with
// their parallel memory annotations), it re-derives the scheduler's
// straight-line regions, recomputes every RAW/WAR/WAW and memory-ordering
// dependence edge on the pre-schedule order using the scheduler's own
// dependence analysis (sched.Dependences), and verifies that the
// post-schedule code is a per-region permutation that preserves every edge.
// careful must match the disambiguation mode the scheduler ran with: a
// schedule that is legal under careful unrolling's memory analysis can
// reorder accesses the conservative analysis would keep in order.
func CheckSchedule(pre, post []isa.Instr, preMem, postMem []ir.MemRef, blockStarts []int, careful bool, pass string) []Diagnostic {
	var diags []Diagnostic
	add := func(code Code, idx int, instr, msg string) {
		diags = append(diags, Diagnostic{
			Code: code, Severity: SevError, Pass: pass, Index: idx, Instr: instr, Msg: msg,
		})
	}
	if len(pre) != len(post) {
		add(CodeSchedShape, -1, "", "scheduler changed the instruction count")
		return diags
	}
	if preMem == nil {
		preMem = make([]ir.MemRef, len(pre))
	}
	if postMem == nil {
		postMem = make([]ir.MemRef, len(post))
	}
	if len(preMem) != len(pre) || len(postMem) != len(post) {
		add(CodeSchedShape, -1, "", "memory annotation length does not match the instruction count")
		return diags
	}

	regions := sched.Regions(pre, blockStarts)
	inRegion := make([]bool, len(pre))
	for _, r := range regions {
		for i := r[0]; i < r[1]; i++ {
			inRegion[i] = true
		}
	}
	// Barriers (branches, calls, returns, halt) and region boundaries must
	// not move at all.
	for i := range pre {
		if inRegion[i] {
			continue
		}
		if !eqInstr(pre[i], post[i]) || preMem[i] != postMem[i] {
			add(CodeSchedShape, i, post[i].String(), "barrier instruction was moved or rewritten by the scheduler")
		}
	}
	if len(diags) > 0 {
		return diags
	}

	for _, r := range regions {
		diags = append(diags, checkRegion(pre, post, preMem, postMem, r[0], r[1], careful, pass)...)
	}
	return diags
}

// checkRegion validates one straight-line region [start, end).
func checkRegion(pre, post []isa.Instr, preMem, postMem []ir.MemRef, start, end int, careful bool, pass string) []Diagnostic {
	var diags []Diagnostic
	add := func(code Code, idx int, instr, msg string) {
		diags = append(diags, Diagnostic{
			Code: code, Severity: SevError, Pass: pass, Index: idx, Instr: instr, Msg: msg,
		})
	}
	n := end - start

	// Match each post-schedule instruction to the earliest unmatched
	// identical pre-schedule instruction. Matching in order keeps copies of
	// identical instructions in their original relative order, which is the
	// only interpretation under which a schedule of duplicates can be
	// legal (any dependence among identical copies is order-preserving).
	posOf := make([]int, n) // pre offset -> post offset
	matched := make([]bool, n)
	for p := 0; p < n; p++ {
		found := -1
		for q := 0; q < n; q++ {
			if !matched[q] && eqInstr(pre[start+q], post[start+p]) && preMem[start+q] == postMem[start+p] {
				found = q
				break
			}
		}
		if found < 0 {
			add(CodeSchedContent, start+p, post[start+p].String(),
				"instruction is not a reordering of the pre-schedule region")
			return diags
		}
		matched[found] = true
		posOf[found] = p
	}

	for _, e := range sched.Dependences(pre[start:end], preMem[start:end], careful) {
		i, j := e[0], e[1]
		if posOf[i] > posOf[j] {
			add(CodeSchedDep, start+posOf[j], post[start+posOf[j]].String(),
				"scheduled before its dependence predecessor `"+pre[start+i].String()+"`")
		}
	}
	return diags
}

// eqInstr compares instructions field by field, treating floating-point
// immediates by bit pattern so NaN payloads still compare equal.
func eqInstr(a, b isa.Instr) bool {
	return a.Op == b.Op && a.Dst == b.Dst && a.Src1 == b.Src1 && a.Src2 == b.Src2 &&
		a.Imm == b.Imm && math.Float64bits(a.FImm) == math.Float64bits(b.FImm) &&
		a.Target == b.Target && a.Sym == b.Sym
}
