// Tests for the static timing oracle: the positive direction (every paper
// benchmark's simulated cycle count sits inside the static bounds on every
// preset machine) and the negative direction (falsified cycle counts and a
// hand-corrupted analysis must be flagged with the right V4xx code). Also
// home to the V108 exhaustiveness check, the one structural code no program
// can trigger through the public API.
package verify_test

import (
	"testing"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/sim"
	"ilp/internal/statictime"
	"ilp/internal/verify"
)

// timingFixture compiles one benchmark, simulates it with per-instruction
// counts, and analyzes it statically.
func timingFixture(t *testing.T, cfg *machine.Config) (*statictime.Analysis, *sim.Result) {
	t.Helper()
	b, err := benchmarks.ByName("linpack")
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiler.Compile(b.Source, compiler.Options{
		Machine: cfg, Level: compiler.O4, Unroll: b.DefaultUnroll,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r, err := sim.Run(c.Prog, sim.Options{Machine: cfg, CountInstrs: true})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	a, err := statictime.Analyze(c.Prog, cfg)
	if err != nil {
		t.Fatalf("statictime: %v", err)
	}
	return a, r
}

func TestTimingOracleClean(t *testing.T) {
	for _, cfg := range []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(4),
		machine.Superpipelined(4),
		machine.SuperscalarWithConflicts(4),
		machine.MultiTitan(),
	} {
		a, r := timingFixture(t, cfg)
		ds := verify.CheckTiming(a, r.MinorCycles, r.InstrCounts, r.TakenExits, "sim")
		if len(ds) != 0 {
			t.Errorf("%s: timing oracle flagged a clean run, first: %s", cfg.Name, ds[0])
		}
	}
}

func TestTimingNegative(t *testing.T) {
	a, r := timingFixture(t, machine.Base())
	lo := a.LowerBound(r.InstrCounts, r.TakenExits)
	hi := a.UpperBound(r.InstrCounts)

	cases := []struct {
		name   string
		cycles int64
		want   verify.Code
	}{
		{"below lower bound", lo - 1, verify.CodeTimingBelowLower},
		{"impossibly fast", lo / 2, verify.CodeTimingBelowLower},
		{"above upper bound", hi + 1, verify.CodeTimingAboveUpper},
		{"runaway stall", hi * 2, verify.CodeTimingAboveUpper},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := verify.CheckTiming(a, tc.cycles, r.InstrCounts, r.TakenExits, "sim")
			if len(ds) == 0 {
				t.Fatalf("falsified cycle count %d not flagged (bounds [%d, %d])", tc.cycles, lo, hi)
			}
			if ds[0].Code != tc.want {
				t.Fatalf("code = %s, want %s: %s", ds[0].Code, tc.want, ds[0])
			}
			// The violation must carry per-block blame, not just a total.
			blamed := 0
			for _, d := range ds[1:] {
				if d.Code == tc.want && d.Index >= 0 {
					blamed++
				}
			}
			if blamed == 0 {
				t.Error("bound violation carries no per-block blame")
			}
		})
	}
}

func TestTimingInternalInconsistency(t *testing.T) {
	a, r := timingFixture(t, machine.Base())

	// Corrupt the analysis: claim an exact span below the proven lower
	// bound on the first conflict-free block.
	corrupted := false
	for bi := range a.Blocks {
		if a.Blocks[bi].ConflictFree {
			a.Blocks[bi].ExactSpan = a.Blocks[bi].Span - 1
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("no conflict-free block to corrupt")
	}
	ds := verify.CheckTiming(a, r.MinorCycles, r.InstrCounts, r.TakenExits, "sim")
	found := false
	for _, d := range ds {
		if d.Code == verify.CodeTimingInternal {
			found = true
		}
	}
	if !found {
		t.Error("corrupted exact span not flagged as V403")
	}
}

func TestTimingMalformedSchedule(t *testing.T) {
	a, r := timingFixture(t, machine.Base())
	corrupted := false
	for bi := range a.Blocks {
		if s := a.Blocks[bi].Sched; s != nil && len(s.Offsets) >= 2 {
			s.Offsets[len(s.Offsets)-1] = -1 // offsets must be nondecreasing from 0
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("no schedule to corrupt")
	}
	ds := verify.CheckTiming(a, r.MinorCycles, r.InstrCounts, r.TakenExits, "sim")
	found := false
	for _, d := range ds {
		if d.Code == verify.CodeTimingInternal {
			found = true
		}
	}
	if !found {
		t.Error("malformed schedule not flagged as V403")
	}
}

// TestAllOpcodesClassified is the V108 exhaustiveness check. CodeBadClass
// guards the opcode table itself (an opcode whose Info().Class falls outside
// the fourteen classes), so no *program* can trigger it while the table is
// correct — this test pins the table instead, documenting why the negative
// suite has no V108 entry.
func TestAllOpcodesClassified(t *testing.T) {
	for op := 0; op < isa.NumOpcodes; op++ {
		if cl := isa.Opcode(op).Info().Class; int(cl) >= isa.NumClasses {
			t.Errorf("opcode %v: class %d outside the %d instruction classes",
				isa.Opcode(op), cl, isa.NumClasses)
		}
	}
}
