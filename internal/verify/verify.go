// Package verify is the toolchain's static correctness net: a machine-code
// verifier and schedule legality checker for the programs the compiler
// emits. The paper's result rests on the claim that the reorganized code is
// equivalent to the original ("the resulting code is reorganized so that
// the stall time will be minimized", §3); this package checks the half of
// that claim that is decidable statically, in the style of translation
// validation:
//
//   - Structural well-formedness (structural.go): opcode and operand arity
//     and register-file agreement, register indices inside the machine
//     description's temporary/home split, branch and call targets that
//     resolve to real labels inside the right function, no fall-through off
//     the end of a function, every instruction classified into one of the
//     fourteen classes, and memory annotations present exactly on memory
//     instructions.
//
//   - Dataflow lints (dataflow.go): must-reach definitions and liveness
//     over the machine-level CFG flag uses of temporaries with no reaching
//     definition, temporaries read after an intervening call clobbered them
//     (the register allocator must spill call-crossing values), and dead
//     stores to temporaries.
//
//   - Schedule legality (schedule.go): the basic-block dependence graph is
//     recomputed on the pre-schedule order with the scheduler's own
//     dependence analysis (sched.Dependences) and the post-schedule
//     permutation is checked to preserve every RAW/WAR/WAW and memory edge.
//
//   - Static timing (timing.go): the cross-check oracle over the static
//     timing analysis (internal/statictime) — a simulated run's minor
//     cycles must fall inside the analyzer's [lower, upper] bounds
//     computed from the run's own dynamic instruction counts, and the
//     analysis itself must be internally consistent (a proven exact span
//     can never undercut its own lower bound).
//
// Diagnostics carry a stable code, a severity, and the name of the pass
// that introduced the violation, so a failing compilation pinpoints the
// guilty pass. compiler.Options.Verify runs these checks after every pass;
// cmd/ilplint exposes them as a standalone linter.
package verify

import (
	"fmt"
	"strings"
)

// Severity grades a diagnostic. Errors mean the program is wrong or the
// toolchain broke an invariant; warnings flag suspicious but semantically
// harmless code (registers reset to zero, so e.g. a dead store computes a
// well-defined, merely useless, value).
type Severity uint8

// Severity levels.
const (
	SevWarning Severity = iota
	SevError
)

// String names the severity.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Code is a stable diagnostic identifier: V1xx structural, V2xx dataflow,
// V3xx schedule legality, V4xx static timing.
type Code string

// Diagnostic codes.
const (
	// Structural (machine-code verifier).
	CodeBadEntry    Code = "V101" // entry point out of range or not a label
	CodeBadOpcode   Code = "V102" // opcode outside the instruction set
	CodeBadOperand  Code = "V103" // operand arity or register-file mismatch
	CodeBadRegSplit Code = "V104" // register outside conventions and the temp/home split
	CodeBadTarget   Code = "V105" // branch target out of range, unlabeled, or cross-function
	CodeBadCall     Code = "V106" // call target is not a function entry label
	CodeFallthrough Code = "V107" // control falls off the end of a function
	CodeBadClass    Code = "V108" // instruction not classified into one of the 14 classes
	CodeBadMemAnnot Code = "V109" // memory annotation missing, spurious, or wrong length

	// Dataflow lints.
	CodeUseBeforeDef Code = "V201" // temporary read with no reaching definition
	CodeCallClobber  Code = "V202" // temporary read after a call clobbered it
	CodeDeadStore    Code = "V203" // temporary written but never read (warning)

	// Schedule legality.
	CodeSchedContent Code = "V301" // region is not a permutation of its pre-schedule content
	CodeSchedDep     Code = "V302" // dependence edge inverted by the schedule
	CodeSchedShape   Code = "V303" // program shape changed (length, barriers, data)

	// Static timing oracle (timing.go).
	CodeTimingBelowLower Code = "V401" // simulated cycles below the static lower bound
	CodeTimingAboveUpper Code = "V402" // simulated cycles above the static upper bound
	CodeTimingInternal   Code = "V403" // static timing analysis internally inconsistent
)

// AllCodes lists every diagnostic code the package can emit, in numeric
// order. The negative test suite uses it to prove each code has a test that
// triggers it.
func AllCodes() []Code {
	return []Code{
		CodeBadEntry, CodeBadOpcode, CodeBadOperand, CodeBadRegSplit,
		CodeBadTarget, CodeBadCall, CodeFallthrough, CodeBadClass,
		CodeBadMemAnnot,
		CodeUseBeforeDef, CodeCallClobber, CodeDeadStore,
		CodeSchedContent, CodeSchedDep, CodeSchedShape,
		CodeTimingBelowLower, CodeTimingAboveUpper, CodeTimingInternal,
	}
}

// Diagnostic is one verifier finding.
type Diagnostic struct {
	Code     Code
	Severity Severity
	// Pass names the compiler pass after which the violation was first
	// observed ("codegen", "sched", ...); empty for standalone checks.
	Pass string
	// Func is the enclosing function label, if known.
	Func string
	// Index is the offending instruction's index in the program, or -1 for
	// program-level findings.
	Index int
	// Instr is the disassembly of the offending instruction.
	Instr string
	// Msg describes the violation.
	Msg string
}

// String renders the diagnostic on one line:
//
//	V201 error: main+12 `add r12, r10, r11`: r10 read with no reaching definition [pass sched]
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: ", d.Code, d.Severity)
	switch {
	case d.Func != "" && d.Index >= 0:
		fmt.Fprintf(&b, "%s@%d ", d.Func, d.Index)
	case d.Func != "":
		fmt.Fprintf(&b, "%s ", d.Func)
	case d.Index >= 0:
		fmt.Fprintf(&b, "@%d ", d.Index)
	}
	if d.Instr != "" {
		fmt.Fprintf(&b, "`%s`: ", d.Instr)
	}
	b.WriteString(d.Msg)
	if d.Pass != "" {
		fmt.Fprintf(&b, " [pass %s]", d.Pass)
	}
	return b.String()
}

// Error is the error returned when verification finds error-severity
// diagnostics. It carries every diagnostic (warnings included) so callers
// can render the full report.
type Error struct {
	Diags []Diagnostic
}

// Error summarizes the first error diagnostic and the total count.
func (e *Error) Error() string {
	first := ""
	errs := 0
	for _, d := range e.Diags {
		if d.Severity != SevError {
			continue
		}
		if errs == 0 {
			first = d.String()
		}
		errs++
	}
	if errs == 1 {
		return "verify: " + first
	}
	return fmt.Sprintf("verify: %s (and %d more errors)", first, errs-1)
}

// AsError wraps the diagnostics in an *Error if any of them is
// error-severity, and returns nil otherwise.
func AsError(diags []Diagnostic) error {
	for _, d := range diags {
		if d.Severity == SevError {
			return &Error{Diags: diags}
		}
	}
	return nil
}

// Errors filters the slice to error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}
