package verify

import (
	"fmt"
	"sort"
	"strings"

	"ilp/internal/compiler/regalloc"
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// Options configures a Check run.
type Options struct {
	// Machine, when set, enables the checks that depend on the machine
	// description: the temporary/home register split and the dataflow
	// lints (which need to know which registers are caller-save
	// temporaries).
	Machine *machine.Config
	// Mem, when set, is the memory-annotation array parallel to the
	// program's instructions; annotation consistency is then checked and
	// used by callers for schedule legality.
	Mem []ir.MemRef
	// Pass is stamped on every diagnostic as provenance (the compiler
	// pass after which the check runs).
	Pass string
}

// Check runs the machine-code verifier — structural well-formedness first,
// then, if the program is structurally sound and a machine description is
// available, the dataflow lints. It returns every finding; use AsError to
// convert error-severity findings into an error.
func Check(p *isa.Program, opts Options) []Diagnostic {
	c := &checker{p: p, opts: opts, spans: functionSpans(p)}
	c.structural()
	if c.errors == 0 && opts.Machine != nil {
		for _, span := range c.spans {
			c.dataflow(span)
		}
	}
	return c.diags
}

// funcSpan is one function's extent in the instruction stream.
type funcSpan struct {
	name       string
	start, end int
}

// functionSpans partitions the instruction stream by function-entry labels.
// The code generator labels function entries with bare names ("_start",
// "main") and basic blocks with dotted names ("main.b3"), so a label
// without a dot starts a new function. A program without symbols is one
// anonymous span.
func functionSpans(p *isa.Program) []funcSpan {
	var starts []int
	for idx, name := range p.Symbols {
		if !strings.Contains(name, ".") && idx >= 0 && idx <= len(p.Instrs) {
			starts = append(starts, idx)
		}
	}
	if len(starts) == 0 {
		return []funcSpan{{name: "", start: 0, end: len(p.Instrs)}}
	}
	sort.Ints(starts)
	var spans []funcSpan
	for i, s := range starts {
		end := len(p.Instrs)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		spans = append(spans, funcSpan{name: p.Symbols[s], start: s, end: end})
	}
	if starts[0] > 0 {
		// Instructions before the first label belong to an anonymous
		// prologue span.
		spans = append([]funcSpan{{name: "", start: 0, end: starts[0]}}, spans...)
	}
	return spans
}

// checker accumulates diagnostics over one program.
type checker struct {
	p      *isa.Program
	opts   Options
	spans  []funcSpan
	diags  []Diagnostic
	errors int
}

// add records a diagnostic at instruction index idx (-1 for program-level).
func (c *checker) add(code Code, sev Severity, idx int, format string, args ...any) {
	d := Diagnostic{
		Code:     code,
		Severity: sev,
		Pass:     c.opts.Pass,
		Index:    idx,
		Msg:      fmt.Sprintf(format, args...),
	}
	if idx >= 0 && idx < len(c.p.Instrs) {
		d.Instr = c.p.Instrs[idx].String()
		d.Func = c.funcOf(idx).name
	}
	if sev == SevError {
		c.errors++
	}
	c.diags = append(c.diags, d)
}

// funcOf returns the span containing instruction idx.
func (c *checker) funcOf(idx int) funcSpan {
	i := sort.Search(len(c.spans), func(i int) bool { return c.spans[i].end > idx })
	if i < len(c.spans) && c.spans[i].start <= idx {
		return c.spans[i]
	}
	return funcSpan{start: 0, end: len(c.p.Instrs)}
}

// structural checks well-formedness of every instruction and the program's
// control-flow skeleton.
func (c *checker) structural() {
	p := c.p
	if p.Entry < 0 || p.Entry >= len(p.Instrs) {
		c.add(CodeBadEntry, SevError, -1, "entry point %d out of range (%d instructions)", p.Entry, len(p.Instrs))
		return
	}
	if c.opts.Mem != nil && len(c.opts.Mem) != len(p.Instrs) {
		c.add(CodeBadMemAnnot, SevError, -1, "memory annotation length %d, want %d", len(c.opts.Mem), len(p.Instrs))
	}
	for i := range p.Instrs {
		c.checkInstr(i)
	}
	for _, span := range c.spans {
		c.checkFallthrough(span)
	}
}

// checkInstr verifies one instruction's opcode, class, operands, register
// split, target, and memory annotation.
func (c *checker) checkInstr(i int) {
	in := &c.p.Instrs[i]
	if int(in.Op) >= isa.NumOpcodes {
		c.add(CodeBadOpcode, SevError, i, "opcode %d outside the instruction set", in.Op)
		return
	}
	info := in.Op.Info()
	if int(info.Class) >= isa.NumClasses {
		c.add(CodeBadClass, SevError, i, "class %d is not one of the %d instruction classes", info.Class, isa.NumClasses)
	}
	if err := in.Validate(); err != nil {
		c.add(CodeBadOperand, SevError, i, "%v", err)
	}
	if c.opts.Machine != nil {
		for _, opnd := range [...]struct {
			what string
			r    isa.Reg
		}{{"dst", in.Dst}, {"src1", in.Src1}, {"src2", in.Src2}} {
			if opnd.r == isa.NoReg || opnd.r >= isa.NumRegs {
				continue // arity and range are CodeBadOperand's job
			}
			if !regAllowed(opnd.r, c.opts.Machine) {
				c.add(CodeBadRegSplit, SevError, i, "%s register %s outside the conventions and the %s temp/home split",
					opnd.what, opnd.r, c.opts.Machine.Name)
			}
		}
	}
	c.checkTarget(i)
	if c.opts.Mem != nil && len(c.opts.Mem) == len(c.p.Instrs) {
		isMem := info.Load || info.Store
		hasAnnot := c.opts.Mem[i].Kind != ir.MemNone
		switch {
		case isMem && !hasAnnot:
			c.add(CodeBadMemAnnot, SevError, i, "memory instruction has no memory annotation")
		case !isMem && hasAnnot:
			c.add(CodeBadMemAnnot, SevError, i, "non-memory instruction annotated with memory kind %d", c.opts.Mem[i].Kind)
		}
	}
}

// checkTarget verifies that a control transfer resolves to a real label:
// calls to function entries, branches to labels inside the same function.
func (c *checker) checkTarget(i int) {
	in := &c.p.Instrs[i]
	info := in.Op.Info()
	if !info.Branch || in.Op == isa.OpJr {
		return
	}
	if in.Target < 0 || in.Target >= len(c.p.Instrs) {
		c.add(CodeBadTarget, SevError, i, "target %d out of range (%d instructions)", in.Target, len(c.p.Instrs))
		return
	}
	if len(c.p.Symbols) == 0 {
		return // hand-assembled program without labels: range check only
	}
	label, labeled := c.p.Symbols[in.Target]
	if in.Op == isa.OpJal {
		switch {
		case !labeled:
			c.add(CodeBadCall, SevError, i, "call target %d is not a label", in.Target)
		case strings.Contains(label, "."):
			c.add(CodeBadCall, SevError, i, "call target %d is the basic-block label %q, not a function entry", in.Target, label)
		case in.Sym != "" && in.Sym != label:
			c.add(CodeBadCall, SevError, i, "call claims callee %q but target %d is labeled %q", in.Sym, in.Target, label)
		}
		return
	}
	if !labeled {
		c.add(CodeBadTarget, SevError, i, "branch target %d is not a label", in.Target)
		return
	}
	span := c.funcOf(i)
	if in.Target < span.start || in.Target >= span.end {
		c.add(CodeBadTarget, SevError, i, "branch target %d (%s) is outside function %s", in.Target, label, span.name)
	}
}

// checkFallthrough verifies control cannot run off the end of a function
// into the next one (or off the end of the program): the last instruction
// must be an unconditional transfer — a return, direct jump, or halt.
func (c *checker) checkFallthrough(span funcSpan) {
	if span.end <= span.start {
		return
	}
	last := span.end - 1
	in := &c.p.Instrs[last]
	if int(in.Op) >= isa.NumOpcodes {
		return // already CodeBadOpcode
	}
	switch in.Op {
	case isa.OpJ, isa.OpJr, isa.OpHalt:
		return
	}
	c.add(CodeFallthrough, SevError, last, "control falls off the end of %s", span.name)
}

// regAllowed reports whether the register is either fixed by software
// convention or inside the machine description's temporary+home pool.
// Integer file: r0 (zero), r1 (return), r2..r9 (arguments), r60 (sp),
// r62 (ra), and the pool r10..r(10+temps+homes-1). Floating-point file:
// f1 (return), f2..f9 (arguments), and the pool f10..f(10+temps+homes-1).
func regAllowed(r isa.Reg, cfg *machine.Config) bool {
	idx := r.Index()
	if r.IsFP() {
		if idx >= 1 && idx < int(isa.FArg0.Index())+isa.NArgs {
			return true
		}
		return idx >= regalloc.PoolBase && idx < regalloc.PoolBase+cfg.FPTemps+cfg.FPHomes
	}
	if idx < int(isa.RArg0)+isa.NArgs || r == isa.RSP || r == isa.RRA {
		return true
	}
	return idx >= regalloc.PoolBase && idx < regalloc.PoolBase+cfg.IntTemps+cfg.IntHomes
}
