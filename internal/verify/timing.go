package verify

import (
	"fmt"
	"sort"

	"ilp/internal/statictime"
)

// CheckTiming is the static timing cross-check oracle: given the static
// analysis of a program against a machine and a simulated run's observables
// (minor cycles plus the per-instruction execution and taken-exit counts
// from sim.Options.CountInstrs), it checks
//
//	LowerBound(counts, exits) ≤ minorCycles ≤ UpperBound(counts)
//
// and the analysis's own internal consistency. A violation of the lower
// bound means the simulator issued faster than the dependence heights,
// issue width, or unit multiplicities permit; a violation of the upper
// bound means it stalled longer than any constraint explains — either way
// one of the two timing models is wrong, which is exactly what the oracle
// is for. Bound violations carry per-block blame: the leaders of the
// largest contributors to the bound, so a failure points at a block, not
// just a number.
func CheckTiming(a *statictime.Analysis, minorCycles int64, counts, exits []int64, pass string) []Diagnostic {
	var ds []Diagnostic

	// Internal consistency: a conflict-free block's exact clean-entry span
	// is a realizable execution, so it can never undercut the block's own
	// span lower bound; schedules must be well-formed (in-order offsets,
	// consistent final advance).
	for bi := range a.Blocks {
		b := &a.Blocks[bi]
		if b.ConflictFree && b.ExactSpan < b.Span {
			ds = append(ds, Diagnostic{
				Code: CodeTimingInternal, Severity: SevError, Pass: pass,
				Func: a.Prog.Symbols[b.Leader], Index: b.Leader,
				Msg: fmt.Sprintf("block [%d,%d): exact clean-entry span %d undercuts its own lower bound %d",
					b.Leader, b.End, b.ExactSpan, b.Span),
			})
		}
		if s := b.Sched; s != nil {
			bad := s.CycleAdv != s.Offsets[len(s.Offsets)-1]
			for j := 1; !bad && j < len(s.Offsets); j++ {
				bad = s.Offsets[j] < s.Offsets[j-1]
			}
			if bad {
				ds = append(ds, Diagnostic{
					Code: CodeTimingInternal, Severity: SevError, Pass: pass,
					Func: a.Prog.Symbols[b.Leader], Index: b.Leader,
					Msg: fmt.Sprintf("block [%d,%d): malformed replay schedule (offsets %v, adv %d)",
						b.Leader, b.End, s.Offsets, s.CycleAdv),
				})
			}
		}
	}

	lo := a.LowerBound(counts, exits)
	hi := a.UpperBound(counts)
	if lo <= minorCycles && minorCycles <= hi {
		return ds
	}

	code, rel, bound := CodeTimingBelowLower, "below lower", lo
	if minorCycles > hi {
		code, rel, bound = CodeTimingAboveUpper, "above upper", hi
	}
	ds = append(ds, Diagnostic{
		Code: code, Severity: SevError, Pass: pass, Index: -1,
		Msg: fmt.Sprintf("simulated %d minor cycles %s static bound %d (bounds [%d, %d])",
			minorCycles, rel, bound, lo, hi),
	})

	// Blame: the blocks contributing most to the violated bound, so the
	// failure names suspects instead of a bare total.
	type contrib struct {
		leader int
		amount int64
	}
	var cs []contrib
	for bi := range a.Blocks {
		b := &a.Blocks[bi]
		if b.Leader >= len(counts) || counts[b.Leader] == 0 {
			continue
		}
		amount := counts[b.Leader] * b.Span
		if code == CodeTimingAboveUpper {
			amount = 0
			for i := b.Leader; i < b.End && i < len(counts); i++ {
				amount += counts[i] * a.Deltas[i]
			}
		}
		if amount > 0 {
			cs = append(cs, contrib{b.Leader, amount})
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].amount > cs[j].amount })
	for i := 0; i < len(cs) && i < 3; i++ {
		bi := a.BlockOf(cs[i].leader)
		b := &a.Blocks[bi]
		ds = append(ds, Diagnostic{
			Code: code, Severity: SevError, Pass: pass,
			Func: a.Prog.Symbols[b.Leader], Index: b.Leader,
			Msg: fmt.Sprintf("block [%d,%d) executed %d times contributes %d cycles to the bound (span %d: dep %d, width %d, unit %d)",
				b.Leader, b.End, counts[b.Leader], cs[i].amount,
				b.Span, b.DepHeight, b.WidthBound, b.UnitBound),
		})
	}
	return ds
}
