// Tests for the machine-code verifier: the positive direction (every paper
// benchmark at every optimization level verifies cleanly) lives here;
// negative_test.go holds the hand-corrupted programs the verifier must
// reject.
package verify_test

import (
	"fmt"
	"testing"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/verify"
)

// TestBenchmarksVerifyClean is the acceptance test of the verifier's
// positive direction: all 8 paper benchmarks, at every optimization level
// and with careful unrolling, must compile with Verify enabled (any
// error-severity diagnostic fails the compile) and produce zero
// error-severity diagnostics when the checker is re-run standalone.
func TestBenchmarksVerifyClean(t *testing.T) {
	levels := []compiler.Level{compiler.O0, compiler.O1, compiler.O2, compiler.O3, compiler.O4}
	if testing.Short() {
		levels = []compiler.Level{compiler.O0, compiler.O4}
	}
	for _, b := range benchmarks.All() {
		for _, lvl := range levels {
			name := fmt.Sprintf("%s/%v", b.Name, lvl)
			t.Run(name, func(t *testing.T) {
				cfg := machine.Base()
				c, err := compiler.Compile(b.Source, compiler.Options{
					Machine: cfg, Level: lvl, Verify: true,
				})
				if err != nil {
					t.Fatalf("verified compile failed: %v", err)
				}
				diags := verify.Check(c.Prog, verify.Options{Machine: cfg, Mem: c.Mem})
				if errs := verify.Errors(diags); len(errs) > 0 {
					t.Fatalf("%d error diagnostics on verified output, first: %s", len(errs), errs[0])
				}
			})
		}
		// Careful unrolling exercises reassociation and the careful
		// memory disambiguator, the most aggressive reordering the
		// pipeline performs.
		t.Run(b.Name+"/unroll4-careful", func(t *testing.T) {
			cfg := machine.Base()
			_, err := compiler.Compile(b.Source, compiler.Options{
				Machine: cfg, Level: compiler.O4, Unroll: 4, Careful: true, Verify: true,
			})
			if err != nil {
				t.Fatalf("verified compile failed: %v", err)
			}
		})
	}
}

// TestVerifyOtherMachines spot-checks the verifier against machine
// descriptions with different register splits and latencies.
func TestVerifyOtherMachines(t *testing.T) {
	b, err := benchmarks.ByName("whet")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []*machine.Config{
		machine.MultiTitan(),
		machine.CRAY1(),
		machine.IdealSuperscalar(4),
		machine.Superpipelined(3),
	} {
		if _, err := compiler.Compile(b.Source, compiler.Options{
			Machine: cfg.Clone(), Level: compiler.O4, Verify: true,
		}); err != nil {
			t.Errorf("%s: verified compile failed: %v", cfg.Name, err)
		}
	}
}
