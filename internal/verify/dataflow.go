package verify

import (
	"math/bits"

	"ilp/internal/compiler/regalloc"
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// regset is a bitset over the 128-entry combined register space.
type regset [2]uint64

func (s *regset) set(r isa.Reg)     { s[r>>6] |= 1 << (r & 63) }
func (s regset) has(r isa.Reg) bool { return s[r>>6]&(1<<(r&63)) != 0 }
func (s regset) union(o regset) regset {
	return regset{s[0] | o[0], s[1] | o[1]}
}
func (s regset) intersect(o regset) regset {
	return regset{s[0] & o[0], s[1] & o[1]}
}
func (s regset) minus(o regset) regset {
	return regset{s[0] &^ o[0], s[1] &^ o[1]}
}

// fullRegset has every register defined (the dataflow lattice top).
var fullRegset = regset{^uint64(0), ^uint64(0)}

// flow is the per-instruction dataflow model of one function span.
type flow struct {
	n     int
	succs [][]int
	preds [][]int
	uses  []regset // real operand reads (checked for reaching defs)
	live  []regset // uses plus synthetic reads (liveness only)
	defs  []regset // registers written (calls: ra and return-value regs)
	clob  []regset // registers invalidated (calls: temps and argument regs)

	temps regset // the caller-save temporary pool of the machine
}

// buildFlow models the span's instructions. Calls (jal) define ra and the
// return-value registers, clobber every temporary and argument register
// (the callee is free to use them), and synthetically read the argument
// registers so argument moves are not dead. Returns (jr) synthetically
// read the return-value registers and sp, which stay live into the caller.
func buildFlow(instrs []isa.Instr, cfg *machine.Config) *flow {
	n := len(instrs)
	f := &flow{
		n:     n,
		succs: make([][]int, n),
		preds: make([][]int, n),
		uses:  make([]regset, n),
		live:  make([]regset, n),
		defs:  make([]regset, n),
		clob:  make([]regset, n),
	}
	for i := 0; i < cfg.IntTemps; i++ {
		f.temps.set(regalloc.TempPhys(ir.RInt, i))
	}
	for i := 0; i < cfg.FPTemps; i++ {
		f.temps.set(regalloc.TempPhys(ir.RFP, i))
	}
	var args regset
	for i := 0; i < isa.NArgs; i++ {
		args.set(isa.R(int(isa.RArg0) + i))
		args.set(isa.F(isa.FArg0.Index() + i))
	}
	for k := range instrs {
		in := &instrs[k]
		info := in.Op.Info()
		u1, u2 := in.Uses()
		if u1 != isa.NoReg {
			f.uses[k].set(u1)
		}
		if u2 != isa.NoReg {
			f.uses[k].set(u2)
		}
		if d := in.Def(); d != isa.NoReg {
			f.defs[k].set(d)
		}
		f.live[k] = f.uses[k]
		edge := func(to int) {
			if to >= 0 && to < n {
				f.succs[k] = append(f.succs[k], to)
				f.preds[to] = append(f.preds[to], k)
			}
		}
		switch {
		case in.Op == isa.OpHalt:
			// Program exit: no successors.
		case in.Op == isa.OpJr:
			// Function exit: the caller resumes with the return values.
			f.live[k].set(isa.RRet)
			f.live[k].set(isa.FRet)
			f.live[k].set(isa.RSP)
		case in.Op == isa.OpJal:
			f.defs[k].set(isa.RRet)
			f.defs[k].set(isa.FRet)
			f.clob[k] = f.temps.union(args)
			f.live[k] = f.live[k].union(args)
			edge(k + 1)
		case info.Branch:
			if info.Cond {
				edge(k + 1)
			}
			edge(in.Target) // Target is span-relative after rebasing below
		default:
			edge(k + 1)
		}
	}
	return f
}

// dataflow runs the lints over one function: must-reach definitions (with
// and without call clobbering) to flag use-before-def and call-clobbered
// reads, then liveness to flag dead stores to temporaries.
func (c *checker) dataflow(span funcSpan) {
	n := span.end - span.start
	if n == 0 {
		return
	}
	instrs := make([]isa.Instr, n)
	copy(instrs, c.p.Instrs[span.start:span.end])
	// Rebase branch targets to span-relative indices; structural checks
	// already guaranteed they land inside the span.
	for k := range instrs {
		info := instrs[k].Op.Info()
		if info.Branch && instrs[k].Op != isa.OpJr && instrs[k].Op != isa.OpJal {
			instrs[k].Target -= span.start
		}
	}
	f := buildFlow(instrs, c.opts.Machine)

	// At function entry every register except the temporaries holds a
	// defined value: the conventions (zero, sp, ra, arguments, return
	// slots) are set by the caller and home registers are zero-initialized
	// by the machine ("registers reset to zero, like memory").
	entry := fullRegset.minus(f.temps)
	definedNC := mustDefined(f, entry, false) // ignoring call clobbers
	definedC := mustDefined(f, entry, true)   // honoring call clobbers

	for k := 0; k < n; k++ {
		idx := span.start + k
		for _, r := range regsOf(f.uses[k]) {
			if r == isa.RZero {
				continue
			}
			switch {
			case !definedNC[k].has(r):
				c.add(CodeUseBeforeDef, SevError, idx, "%s read with no reaching definition in %s", r, span.name)
			case !definedC[k].has(r):
				c.add(CodeCallClobber, SevError, idx, "%s read after a call clobbered it (caller-save temporaries must be spilled across calls)", r)
			}
		}
	}

	liveOut := liveness(f)
	for k := 0; k < n; k++ {
		d := instrs[k].Def()
		if d == isa.NoReg || !f.temps.has(d) {
			continue
		}
		if !liveOut[k].has(d) {
			c.add(CodeDeadStore, SevWarning, span.start+k, "%s written but never read", d)
		}
	}
}

// mustDefined computes, per instruction, the set of registers defined on
// every path from function entry. When clobber is true, calls invalidate
// their clobber set. Unreachable instructions converge to the full set and
// are therefore never flagged.
func mustDefined(f *flow, entry regset, clobber bool) []regset {
	in := make([]regset, f.n)
	for k := range in {
		in[k] = fullRegset
	}
	in[0] = entry
	out := func(k int) regset {
		o := in[k].union(f.defs[k])
		if clobber {
			o = o.minus(f.clob[k])
		}
		return o
	}
	for changed := true; changed; {
		changed = false
		for k := 0; k < f.n; k++ {
			v := fullRegset
			if k == 0 {
				v = entry
			}
			for _, p := range f.preds[k] {
				v = v.intersect(out(p))
			}
			if v != in[k] {
				in[k] = v
				changed = true
			}
		}
	}
	return in
}

// liveness computes per-instruction live-out sets (backward may-analysis).
// Calls kill their clobber set: a temporary's value never survives a call,
// so a definition whose only "uses" are beyond a call is still dead.
func liveness(f *flow) []regset {
	liveIn := make([]regset, f.n)
	liveOut := make([]regset, f.n)
	for changed := true; changed; {
		changed = false
		for k := f.n - 1; k >= 0; k-- {
			var o regset
			for _, s := range f.succs[k] {
				o = o.union(liveIn[s])
			}
			i := f.live[k].union(o.minus(f.defs[k].union(f.clob[k])))
			if o != liveOut[k] || i != liveIn[k] {
				liveOut[k], liveIn[k] = o, i
				changed = true
			}
		}
	}
	return liveOut
}

// regsOf expands a regset into registers.
func regsOf(s regset) []isa.Reg {
	var out []isa.Reg
	for w := 0; w < 2; w++ {
		for word := s[w]; word != 0; word &= word - 1 {
			out = append(out, isa.Reg(w*64+bits.TrailingZeros64(word)))
		}
	}
	return out
}
