package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"

	"ilp/internal/benchmarks"
	"ilp/internal/experiments"
	"ilp/internal/ilperr"
	"ilp/internal/store"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Shards is how many shards to partition the benchmark suite into.
	// Capped at the benchmark count; 0 means 2.
	Shards int
	// Concurrency bounds simultaneously running worker processes.
	// 0 means all shards at once.
	Concurrency int
	// StorePath is the final merged store. Shard stores live beside it
	// as StorePath.shard<i>.
	StorePath string

	// MaxDegree, Benchmarks, Experiments, Workers, Retries, Degrade and
	// the cell backoffs are forwarded to every worker's experiments
	// config (Workers bounds sim goroutines inside one worker process).
	MaxDegree   int
	Benchmarks  []string
	Experiments []string
	Workers     int
	Retries     int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Degrade     bool

	// Faults is the injector spec forwarded to workers — both pipeline
	// faults and the kill/hang/tear process faults.
	Faults string

	// WorkerArgv is the command line that re-enters WorkerMain (for
	// ilpfab: [self, "worker"]). Required.
	WorkerArgv []string
	// WorkerEnv appends to the inherited environment of each worker.
	WorkerEnv []string

	// MaxRestarts caps restarts per shard (transient failures only);
	// negative means 0. Default 8.
	MaxRestarts int
	// RestartBackoff is the base delay before a restart, doubling per
	// attempt up to RestartBackoffMax. Defaults 25ms / 1s.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration

	// Lease is the heartbeat lease TTL: a worker silent this long is
	// declared dead and killed. Default 5s. Heartbeat is the worker's
	// ping interval; default Lease/8.
	Lease     time.Duration
	Heartbeat time.Duration
	// StartupGrace is the TTL of the initial lease grant, covering
	// process spawn through the worker's first event. It exists because
	// startup latency scales with machine load (and the race detector),
	// not with the heartbeat cadence — a short steady-state lease with
	// slow spawns would otherwise livelock: every attempt killed before
	// it can say hello, forever. Default max(4×Lease, 2s).
	StartupGrace time.Duration

	// Log receives supervision narration (restarts, revocations).
	// nil discards it.
	Log io.Writer
}

func (c Config) shards() int {
	if c.Shards <= 0 {
		return 2
	}
	return c.Shards
}

func (c Config) maxRestarts() int {
	switch {
	case c.MaxRestarts < 0:
		return 0
	case c.MaxRestarts == 0:
		return 8
	}
	return c.MaxRestarts
}

func (c Config) lease() time.Duration {
	if c.Lease <= 0 {
		return 5 * time.Second
	}
	return c.Lease
}

func (c Config) startupGrace() time.Duration {
	if c.StartupGrace > 0 {
		return c.StartupGrace
	}
	if g := 4 * c.lease(); g > 2*time.Second {
		return g
	}
	return 2 * time.Second
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return c.lease() / 8
}

func (c Config) restartBackoff() time.Duration {
	if c.RestartBackoff <= 0 {
		return 25 * time.Millisecond
	}
	return c.RestartBackoff
}

func (c Config) restartBackoffMax() time.Duration {
	if c.RestartBackoffMax <= 0 {
		return time.Second
	}
	return c.RestartBackoffMax
}

// WorkerError is a failed shard attempt. Its transience (by the ilperr
// taxonomy) is the restart decision: crashes, lease revocations, and
// locked stores are transient; a worker reporting a permanent pipeline
// failure or a bad spec is not.
type WorkerError struct {
	Shard   string
	Attempt int
	// Revoked marks attempts killed by the watchdog for a lapsed lease.
	Revoked bool
	// Permanent is the worker's own verdict (error event or exit code).
	Permanent bool
	Err       error
}

func (e *WorkerError) Error() string {
	verdict := "transient"
	if e.Permanent {
		verdict = "permanent"
	}
	if e.Revoked {
		verdict += ", lease revoked"
	}
	return fmt.Sprintf("fabric: shard %s attempt %d failed (%s): %v", e.Shard, e.Attempt, verdict, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Transient implements the ilperr classification.
func (e *WorkerError) Transient() bool { return !e.Permanent }

// ShardStatus is one shard's outcome in a Summary.
type ShardStatus struct {
	ID         string
	Benchmarks []string
	// Attempts is how many worker processes ran (1 = no restarts).
	Attempts int
	// Revocations counts attempts killed for a lapsed lease.
	Revocations int
	// Report is the final successful attempt's sweep accounting.
	Report experiments.SweepReport
	// Err is the shard's terminal failure, nil on success.
	Err error
}

// Summary is a completed fabric run.
type Summary struct {
	Shards []ShardStatus
	// Restarts is the total worker restarts across all shards.
	Restarts int
	// Merge describes the join of the shard stores. Merge.Duplicates is
	// the zero-recomputation witness: disjoint shards resuming from
	// their own stores can only produce duplicates by re-measuring a
	// committed cell, so a crash-free-of-rework run merges with zero.
	Merge store.MergeInfo
	// Report is the render pass's accounting. Report.Live is the other
	// half of the witness: the render resolves every cell from the
	// merged store, so any live simulation means a worker lost work.
	Report experiments.SweepReport
}

// Coordinator supervises one sharded sweep.
type Coordinator struct {
	cfg    Config
	leases *LeaseTable
}

// New builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.StorePath == "" {
		return nil, errors.New("fabric: Config.StorePath is required")
	}
	if len(cfg.WorkerArgv) == 0 {
		return nil, errors.New("fabric: Config.WorkerArgv is required")
	}
	if cfg.Log != nil {
		// The narration writer is shared by the coordinator's own logf
		// and every concurrent worker's passed-through stderr (os/exec
		// spawns one copying goroutine per process when the writer is
		// not an *os.File), so all writes must be serialized here —
		// callers hand in plain bytes.Buffers.
		cfg.Log = &syncWriter{w: cfg.Log}
	}
	return &Coordinator{cfg: cfg, leases: NewLeaseTable(cfg.lease(), nil)}, nil
}

// syncWriter serializes Write calls from the coordinator and its worker
// stderr pipes onto one underlying writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// ShardStorePath is where shard i's store lives, beside the merged store.
func (c *Coordinator) ShardStorePath(i int) string {
	return fmt.Sprintf("%s.shard%d", c.cfg.StorePath, i)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}

// Run executes the sharded sweep: partition, supervise the shard workers
// to completion, merge the shard stores into StorePath, then render the
// experiment tables to w from the merged store. The rendition is
// byte-identical to a fault-free single-process `ilpbench` run of the
// same sweep, whatever crashed along the way.
func (c *Coordinator) Run(ctx context.Context, w io.Writer) (Summary, error) {
	var sum Summary
	suite := c.cfg.Benchmarks
	if len(suite) == 0 {
		suite = benchmarks.Names()
	}
	shards := Partition(suite, c.cfg.shards())

	// Watchdog: sweep the lease table for silent workers. Granted
	// leases carry the kill hook for their attempt's process.
	wctx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go func() {
		tick := c.cfg.lease() / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				for _, shard := range c.leases.Sweep() {
					c.logf("fabric: %s lease expired; killing worker", shard)
				}
			case <-wctx.Done():
				return
			}
		}
	}()

	conc := c.cfg.Concurrency
	if conc <= 0 {
		conc = len(shards)
	}
	sem := make(chan struct{}, conc)
	statuses := make([]ShardStatus, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			statuses[i] = c.runShard(ctx, sh, i)
		}(i, sh)
	}
	wg.Wait()

	var errs []error
	for _, st := range statuses {
		sum.Restarts += st.Attempts - 1
		if st.Err != nil {
			errs = append(errs, st.Err)
		}
	}
	sum.Shards = statuses
	if err := errors.Join(errs...); err != nil {
		return sum, err
	}

	srcs := make([]string, len(shards))
	for i := range shards {
		srcs[i] = c.ShardStorePath(i)
	}
	info, err := store.Merge(c.cfg.StorePath, srcs...)
	if err != nil {
		return sum, fmt.Errorf("fabric: merging shard stores: %w", err)
	}
	sum.Merge = info
	c.logf("fabric: merged %d shard stores: %d cells (%d duplicates, %d conflicts, %d torn tails repaired)",
		info.Sources, info.Records, info.Duplicates, info.Conflicts, info.TornTails)

	rep, err := c.render(ctx, w)
	sum.Report = rep
	if err != nil {
		return sum, err
	}
	return sum, nil
}

// render replays the experiment renditions from the merged store: every
// cell resolves as a resumed cache hit, so this pass is cheap and its
// output is exactly the single-process rendition.
func (c *Coordinator) render(ctx context.Context, w io.Writer) (experiments.SweepReport, error) {
	st, err := store.Open(c.cfg.StorePath)
	if err != nil {
		return experiments.SweepReport{}, fmt.Errorf("fabric: opening merged store: %w", err)
	}
	defer st.Close()
	r := experiments.NewRunner(experiments.Config{
		MaxDegree:   c.cfg.MaxDegree,
		Workers:     c.cfg.Workers,
		Benchmarks:  c.cfg.Benchmarks,
		Retries:     c.cfg.Retries,
		BaseBackoff: c.cfg.BaseBackoff,
		MaxBackoff:  c.cfg.MaxBackoff,
		Degrade:     c.cfg.Degrade,
		Store:       st,
	})
	ids := c.cfg.Experiments
	if len(ids) == 0 {
		ids = canonicalIDs()
	}
	var errs []error
	for _, id := range ids {
		res, err := r.RunCtx(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return r.Report(), err
			}
			errs = append(errs, fmt.Errorf("%s: %w", id, err))
			continue
		}
		fmt.Fprintf(w, "==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
	}
	return r.Report(), errors.Join(errs...)
}

// runShard supervises one shard to success or terminal failure.
func (c *Coordinator) runShard(ctx context.Context, sh Shard, idx int) ShardStatus {
	status := ShardStatus{ID: sh.ID, Benchmarks: sh.Benchmarks}
	for attempt := 0; ; attempt++ {
		status.Attempts = attempt + 1
		rep, err := c.runAttempt(ctx, sh, idx, attempt)
		if err == nil {
			status.Report = rep
			return status
		}
		var werr *WorkerError
		if errors.As(err, &werr) && werr.Revoked {
			status.Revocations++
		}
		if ctx.Err() != nil {
			status.Err = context.Cause(ctx)
			return status
		}
		if !ilperr.IsTransient(err) || attempt >= c.cfg.maxRestarts() {
			status.Err = err
			return status
		}
		delay := restartDelay(c.cfg.restartBackoff(), c.cfg.restartBackoffMax(), attempt)
		c.logf("fabric: %s attempt %d failed: %v; restarting in %v", sh.ID, attempt, err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			status.Err = context.Cause(ctx)
			return status
		}
	}
}

// restartDelay doubles base per attempt, capped at max.
func restartDelay(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// runAttempt spawns one worker process for the shard and supervises it
// until it exits (on its own, or killed by the watchdog). A nil error
// means the worker sent done and exited clean.
func (c *Coordinator) runAttempt(ctx context.Context, sh Shard, idx, attempt int) (experiments.SweepReport, error) {
	var rep experiments.SweepReport
	fail := func(revoked, permanent bool, err error) (experiments.SweepReport, error) {
		return rep, &WorkerError{Shard: sh.ID, Attempt: attempt, Revoked: revoked, Permanent: permanent, Err: err}
	}

	spec := ShardSpec{
		Shard:       sh.ID,
		StorePath:   c.ShardStorePath(idx),
		Benchmarks:  sh.Benchmarks,
		Experiments: c.cfg.Experiments,
		MaxDegree:   c.cfg.MaxDegree,
		Workers:     c.cfg.Workers,
		Retries:     c.cfg.Retries,
		BaseBackoff: c.cfg.BaseBackoff,
		MaxBackoff:  c.cfg.MaxBackoff,
		Degrade:     c.cfg.Degrade,
		Faults:      c.cfg.Faults,
		Attempt:     attempt,
		Heartbeat:   c.cfg.heartbeat(),
	}
	specLine, err := json.Marshal(spec)
	if err != nil {
		return fail(false, true, err)
	}

	cmd := exec.Command(c.cfg.WorkerArgv[0], c.cfg.WorkerArgv[1:]...)
	cmd.Env = append(cmd.Environ(), c.cfg.WorkerEnv...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fail(false, false, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fail(false, false, err)
	}
	cmd.Stderr = c.cfg.Log
	if err := cmd.Start(); err != nil {
		return fail(false, false, fmt.Errorf("spawning worker: %w", err))
	}
	// The lease's revoke hook kills this attempt's process; Kill on an
	// already-exited process is a harmless error.
	// Initial grant carries the startup grace; the hello event (or any
	// earlier output) snaps it down to the steady-state lease.
	c.leases.GrantFor(sh.ID, c.cfg.startupGrace(), func() { cmd.Process.Kill() })
	defer c.leases.Drop(sh.ID)
	// Cancellation kills the worker too; AfterFunc avoids a goroutine
	// per attempt that outlives it.
	stopKill := context.AfterFunc(ctx, func() { cmd.Process.Kill() })
	defer stopKill()

	if _, err := stdin.Write(append(specLine, '\n')); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fail(false, false, fmt.Errorf("sending spec: %w", err))
	}
	// Hold stdin open: its EOF is the worker's coordinator-death signal.
	defer stdin.Close()

	var (
		done      *Event
		workerErr *Event
		revoked   bool
	)
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // a torn final line from a dying worker
		}
		// A lapsed renewal only condemns a worker that still owes events:
		// after its done event the lease is retired (below), and the
		// stray-event case falls through harmlessly.
		if !c.leases.Renew(sh.ID) && done == nil {
			revoked = true
		}
		switch ev.Type {
		case EventDone:
			e := ev
			done = &e
			// The shard is complete and durable; the worker owes nothing
			// further, so silence from here on is legal. Retiring the
			// lease now keeps the watchdog from revoking a finished
			// worker whose process teardown (slow under the race
			// detector on a loaded host) outlives the steady-state TTL —
			// EOF, Wait, and the verdict below can take their time.
			c.leases.Drop(sh.ID)
		case EventError:
			e := ev
			workerErr = &e
		}
	}
	waitErr := cmd.Wait()
	if c.leases.Revoked(sh.ID) {
		revoked = true
	}

	switch {
	case ctx.Err() != nil:
		return rep, context.Cause(ctx)
	case revoked:
		return fail(true, false, fmt.Errorf("worker silent past its %v lease: %w", c.cfg.lease(), errLeaseExpired))
	case workerErr != nil:
		return fail(false, workerErr.Permanent, errors.New(workerErr.Err))
	case waitErr != nil:
		var xerr *exec.ExitError
		permanent := errors.As(waitErr, &xerr) && xerr.ExitCode() == ExitPermanent
		return fail(false, permanent, fmt.Errorf("worker: %w", waitErr))
	case done == nil:
		return fail(false, false, errors.New("worker exited clean without a done event"))
	}
	if done.Report != nil {
		rep = *done.Report
	}
	return rep, nil
}

// errLeaseExpired marks attempts killed by the lease watchdog.
var errLeaseExpired = errors.New("lease expired")
