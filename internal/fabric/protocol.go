// The coordinator/worker wire protocol: newline-delimited JSON, one
// ShardSpec down stdin, a stream of Events back up stdout. The protocol
// is deliberately one-shot — the spec is immutable for the life of the
// process, so a restarted worker is indistinguishable from a fresh one
// except for its Attempt counter (which keys the fault injector's
// per-restart schedule).
package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"ilp/internal/experiments"
)

// ShardSpec is the coordinator's one-line instruction to a worker.
type ShardSpec struct {
	// Shard is the shard id; it prefixes the worker's injection
	// coordinates and labels its events.
	Shard string `json:"shard"`
	// StorePath is the shard's private result store. The worker takes
	// the store's writer lock, so a not-yet-reaped predecessor cannot
	// corrupt the shard.
	StorePath string `json:"store"`
	// Benchmarks is the shard's benchmark subset.
	Benchmarks []string `json:"benchmarks"`
	// Experiments lists the experiment ids to sweep; empty means all.
	Experiments []string `json:"experiments,omitempty"`
	// MaxDegree, Workers, Retries, Degrade and the backoffs parameterize
	// the worker's experiments.Config exactly as ilpbench's flags do.
	MaxDegree   int           `json:"max_degree,omitempty"`
	Workers     int           `json:"workers,omitempty"`
	Retries     int           `json:"retries,omitempty"`
	BaseBackoff time.Duration `json:"base_backoff,omitempty"`
	MaxBackoff  time.Duration `json:"max_backoff,omitempty"`
	Degrade     bool          `json:"degrade,omitempty"`
	// Faults is the fault-injector spec (faultinject.Parse grammar),
	// covering both in-pipeline sites and the worker kill/hang/tear
	// sites this worker consults at each live commit.
	Faults string `json:"faults,omitempty"`
	// Attempt is the restart count: 0 for the first spawn. It feeds the
	// injection coordinate so each restart draws a fresh fault schedule.
	Attempt int `json:"attempt"`
	// Heartbeat is how often the worker pings when no cells are
	// committing. Zero means 50ms.
	Heartbeat time.Duration `json:"heartbeat,omitempty"`
}

func (s ShardSpec) heartbeat() time.Duration {
	if s.Heartbeat <= 0 {
		return 50 * time.Millisecond
	}
	return s.Heartbeat
}

// Event types a worker can emit.
const (
	// EventHello is the first event: the worker parsed its spec and
	// opened its store.
	EventHello = "hello"
	// EventCell reports one resolved measurement cell.
	EventCell = "cell"
	// EventPing is an idle heartbeat.
	EventPing = "ping"
	// EventDone is the last event of a successful shard: the sweep
	// finished and every cell is committed.
	EventDone = "done"
	// EventError reports a failed shard; Permanent says whether a
	// restart could help.
	EventError = "error"
)

// Event is one line of worker → coordinator progress. Every event, of any
// type, renews the shard's lease — a worker is live as long as it says
// anything at all.
type Event struct {
	Type  string `json:"type"`
	Shard string `json:"shard"`
	// Key is the cell fingerprint (EventCell only).
	Key string `json:"key,omitempty"`
	// Cached marks cells served without a live simulation — resumed from
	// the shard store or joined onto a sibling request.
	Cached bool `json:"cached,omitempty"`
	// Err and Permanent describe an EventError.
	Err       string `json:"err,omitempty"`
	Permanent bool   `json:"permanent,omitempty"`
	// Report is the shard's final sweep accounting (EventDone only).
	Report *experiments.SweepReport `json:"report,omitempty"`
}

// eventWriter serializes events onto one stream. Cell events fire on
// measurement goroutines while the heartbeat goroutine pings, so the
// writes must exclude each other or the NDJSON stream tears.
type eventWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

func newEventWriter(w io.Writer) *eventWriter { return &eventWriter{w: w} }

// send writes one event line. Errors are sticky and deliberately not
// fatal: a worker whose coordinator vanished keeps running its sweep (the
// store is the source of truth; events are only supervision).
func (ew *eventWriter) send(ev Event) {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return
	}
	buf, err := json.Marshal(ev)
	if err != nil {
		ew.err = err
		return
	}
	buf = append(buf, '\n')
	if _, err := ew.w.Write(buf); err != nil {
		ew.err = err
	}
}

// readSpec reads the single spec line off the worker's stdin, leaving the
// reader positioned for the hold-open EOF watch.
func readSpec(br *bufio.Reader) (ShardSpec, error) {
	line, err := br.ReadBytes('\n')
	if err != nil && len(line) == 0 {
		return ShardSpec{}, fmt.Errorf("fabric: reading shard spec: %w", err)
	}
	var spec ShardSpec
	if err := json.Unmarshal(line, &spec); err != nil {
		return ShardSpec{}, fmt.Errorf("fabric: bad shard spec: %w", err)
	}
	if spec.Shard == "" || spec.StorePath == "" {
		return ShardSpec{}, fmt.Errorf("fabric: shard spec missing shard id or store path")
	}
	return spec, nil
}
