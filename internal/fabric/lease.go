package fabric

import (
	"sync"
	"time"
)

// LeaseTable tracks the heartbeat lease of every running shard attempt.
// A lease is granted when the worker spawns, renewed by every event the
// worker emits, and revoked — firing the attempt's revoke hook, which
// kills the process — when it lapses past its TTL. The table is the one
// piece of supervision state shared between the per-shard supervisors
// (who grant and renew) and the coordinator's watchdog (who sweeps), so
// all transitions happen under one lock and a revoked lease can never be
// renewed back to life: the supervisor learns of the revocation from
// Renew's return and treats the attempt as crashed.
//
// The clock is injected so expiry logic is unit-testable without sleeping.
type LeaseTable struct {
	mu     sync.Mutex
	ttl    time.Duration
	now    func() time.Time
	leases map[string]*lease
}

type lease struct {
	expires time.Time
	revoked bool
	revoke  func()
}

// NewLeaseTable builds a table with the given TTL. now is the clock;
// nil means time.Now.
func NewLeaseTable(ttl time.Duration, now func() time.Time) *LeaseTable {
	if now == nil {
		now = time.Now
	}
	return &LeaseTable{ttl: ttl, now: now, leases: map[string]*lease{}}
}

// Grant opens a lease for shard, replacing any previous one. revoke is
// called (under no lock held by the caller's renew path, but under the
// table lock) when the lease expires; it must be idempotent and
// non-blocking — killing an already-dead process is fine.
func (t *LeaseTable) Grant(shard string, revoke func()) {
	t.GrantFor(shard, t.ttl, revoke)
}

// GrantFor is Grant with a one-off TTL for the initial period. The first
// Renew snaps the lease back to the table TTL. The coordinator uses this
// to give a freshly spawned worker a startup grace longer than the
// steady-state lease: process spawn, runtime init, and the shard store
// open happen before the worker can emit its first event, and their
// latency (seconds under load or the race detector) has nothing to do
// with the heartbeat cadence a live worker must sustain.
func (t *LeaseTable) GrantFor(shard string, ttl time.Duration, revoke func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.leases[shard] = &lease{expires: t.now().Add(ttl), revoke: revoke}
}

// Renew extends shard's lease by the TTL. It returns false if the lease
// is absent or already revoked — the worker this event came from is
// being killed, and its supervisor should stop trusting its stream.
func (t *LeaseTable) Renew(shard string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[shard]
	if !ok || l.revoked {
		return false
	}
	l.expires = t.now().Add(t.ttl)
	return true
}

// Revoked reports whether shard's lease has been revoked.
func (t *LeaseTable) Revoked(shard string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[shard]
	return ok && l.revoked
}

// Drop removes shard's lease without revoking: the attempt ended on its
// own (exit observed), so there is no process left to kill.
func (t *LeaseTable) Drop(shard string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.leases, shard)
}

// Sweep revokes every lease that has expired as of the injected clock,
// firing each one's revoke hook, and returns the revoked shard ids. The
// coordinator's watchdog calls this on a short ticker.
func (t *LeaseTable) Sweep() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var revoked []string
	now := t.now()
	for shard, l := range t.leases {
		if l.revoked || l.expires.After(now) {
			continue
		}
		l.revoked = true
		if l.revoke != nil {
			l.revoke()
		}
		revoked = append(revoked, shard)
	}
	return revoked
}
