package fabric

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ilp/internal/experiments"
	"ilp/internal/faultinject"
	"ilp/internal/ilperr"
	"ilp/internal/store"
)

// errCoordinatorGone cancels a worker whose stdin closed: the coordinator
// died (or deliberately hung up), so there is no one left to report to
// and no lease keeping this process legitimate.
var errCoordinatorGone = errors.New("fabric: coordinator closed the spec pipe")

// Worker exit codes. The coordinator reads them as a transience verdict
// when the event stream ended without a verdict of its own.
const (
	// ExitOK: sweep complete, every cell committed, done event sent.
	ExitOK = 0
	// ExitTransient: the shard failed in a way a restart can fix.
	ExitTransient = 1
	// ExitPermanent: the shard can never succeed (bad spec, unknown
	// benchmark, permanent pipeline failure); restarting wastes work.
	ExitPermanent = 2
)

// WorkerMain is the entry point of a shard worker process: it reads one
// ShardSpec line from stdin, sweeps the shard's cells into the shard
// store, and streams Events to stdout. cmd/ilpfab re-execs itself into
// this function ("ilpfab worker"), and the fabric tests re-exec the test
// binary the same way.
//
// The worker is where injected process faults live: at every live cell
// commit it consults the spec's injector at the workerkill, workerhang,
// and workertear sites with coordinate (shard/liveIndex, attempt).
// Because the observer hook fires only after the cell's store append has
// fsync'd, a fired kill always leaves the cell durable — every attempt
// that reaches one live commit makes progress, which bounds total
// restarts by the cell count even at injection rate 1.
func WorkerMain(stdin io.Reader, stdout, stderr io.Writer) int {
	br := bufio.NewReader(stdin)
	spec, err := readSpec(br)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitPermanent
	}
	ew := newEventWriter(stdout)

	fail := func(err error) int {
		permanent := !ilperr.IsTransient(err)
		ew.send(Event{Type: EventError, Shard: spec.Shard, Err: err.Error(), Permanent: permanent})
		fmt.Fprintf(stderr, "fabric worker %s: %v\n", spec.Shard, err)
		if permanent {
			return ExitPermanent
		}
		return ExitTransient
	}

	inj, err := faultinject.Parse(spec.Faults)
	if err != nil {
		return fail(ilperr.MarkPermanent(fmt.Errorf("fabric: faults spec: %w", err)))
	}
	st, err := store.Open(spec.StorePath)
	if err != nil {
		// A locked store is a live (or unreaped) predecessor — transient;
		// the coordinator's backoff outlives the corpse. Corruption stays
		// permanent through the StoreError's own classification.
		return fail(fmt.Errorf("fabric: opening shard store: %w", err))
	}
	defer st.Close()

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	// Hold-open watch: the spec line is the only traffic the coordinator
	// sends, so the next read blocks until the pipe closes — coordinator
	// death, or the watchdog revoking our lease and killing us anyway.
	go func() {
		io.Copy(io.Discard, br)
		cancel(errCoordinatorGone)
	}()

	// Heartbeat: liveness when no cells are resolving (long simulations,
	// a cold compile). Any event renews the lease, so cells do double
	// duty and the ping is purely for gaps.
	stopPing := make(chan struct{})
	var stopOnce sync.Once
	quiet := func() { stopOnce.Do(func() { close(stopPing) }) }
	defer quiet()
	go func() {
		t := time.NewTicker(spec.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ew.send(Event{Type: EventPing, Shard: spec.Shard})
			case <-stopPing:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	r := experiments.NewRunner(experiments.Config{
		MaxDegree:   spec.MaxDegree,
		Workers:     spec.Workers,
		Benchmarks:  spec.Benchmarks,
		Retries:     spec.Retries,
		BaseBackoff: spec.BaseBackoff,
		MaxBackoff:  spec.MaxBackoff,
		Degrade:     spec.Degrade,
		Store:       st,
		Faults:      inj,
	})

	// The chaos hook: fires at each live commit, after the cell is
	// durable. Injected deaths are the whole point of this fabric, so
	// they sit in the main path, not a test build tag — a nil injector
	// reduces every probe to a hash-free no-op.
	var live atomic.Int64
	octx := experiments.WithObserver(ctx, func(ev experiments.CellEvent) {
		if ev.Err != nil {
			return
		}
		ew.send(Event{Type: EventCell, Shard: spec.Shard, Key: ev.Fingerprint, Cached: ev.Cached})
		if ev.Cached {
			return
		}
		key := fmt.Sprintf("%s/%d", spec.Shard, live.Add(1)-1)
		switch {
		case inj.Fires(faultinject.SiteWorkerTear, key, spec.Attempt):
			tearStore(spec.StorePath)
			killSelf()
		case inj.Fires(faultinject.SiteWorkerKill, key, spec.Attempt):
			killSelf()
		case inj.Fires(faultinject.SiteWorkerHang, key, spec.Attempt):
			// Go silent and stall: the lease must expire and the
			// watchdog must kill us. Blocking this observer stalls the
			// measuring goroutine, which is exactly a wedged worker.
			quiet()
			select {}
		}
	})

	ew.send(Event{Type: EventHello, Shard: spec.Shard})
	ids := spec.Experiments
	if len(ids) == 0 {
		ids = canonicalIDs()
	}
	var errs []error
	for _, id := range ids {
		if _, err := r.RunCtx(octx, id); err != nil {
			if ctx.Err() != nil {
				return fail(fmt.Errorf("fabric: shard cancelled: %w", context.Cause(ctx)))
			}
			// Mirror the single-process sweep: one broken experiment
			// does not abandon the rest of the shard's cells.
			errs = append(errs, fmt.Errorf("%s: %w", id, err))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return fail(err)
	}

	quiet()
	rep := r.Report()
	ew.send(Event{Type: EventDone, Shard: spec.Shard, Report: &rep})
	return ExitOK
}

// killSelf is SIGKILL, not os.Exit: nothing runs afterwards — no deferred
// Close, no flush — exactly the crash the fabric must survive.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; Kill cannot fail against our own pid
}

// tearStore appends a torn, newline-less partial record to the shard
// store through a separate descriptor, simulating a crash mid-append. The
// CRC tail repair must drop it on the next open.
func tearStore(path string) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return
	}
	f.WriteString(`{"crc":1,"rec":{"key":"torn-by-chaos`)
	f.Close()
}
