package fabric

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

// chaosSchedules is how many seeded fault schedules the chaos sweep runs.
// The default keeps tier-1 fast; `make chaos` sets ILP_FABRIC_SCHEDULES
// to run the long sweep (≥100 schedules, under -race).
func chaosSchedules(t *testing.T, def int) int {
	t.Helper()
	v := os.Getenv("ILP_FABRIC_SCHEDULES")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("bad ILP_FABRIC_SCHEDULES=%q", v)
	}
	return n
}

// TestFabricChaosSchedules is the kill-anywhere sweep: every seed draws a
// different schedule of worker SIGKILLs, hangs, torn stores, and injected
// pipeline faults, and every schedule must converge to byte-identical
// output with zero recomputation of committed cells. The injector's
// decisions are pure functions of (seed, site, key, attempt), so a
// failing seed replays exactly.
func TestFabricChaosSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	n := chaosSchedules(t, 6)

	base := testConfig(t, t.TempDir())
	// The lease must tolerate the host's scheduling latency, not just the
	// heartbeat cadence: this suite runs 8 race-instrumented worker
	// processes on possibly one core, where a healthy worker can sit in
	// the runqueue for hundreds of milliseconds without emitting a thing.
	// A sub-second lease here livelocks — every revocation spawns a
	// replacement that starves the same way. Hung workers are still
	// caught, just 3s later; the directed hang test covers a tight lease.
	base.Lease = 3 * time.Second
	base.Heartbeat = 50 * time.Millisecond
	// Spawn + race-runtime init + store open happen before the first
	// event can renew, and take seconds when 8 workers start at once.
	base.StartupGrace = 10 * time.Second
	base.MaxRestarts = 24
	// Pipeline faults ride along (store-append failures and slow stalls
	// are retried inside the worker); the process sites do the killing.
	// Rates are tuned so schedules stay solvable: a store append only
	// fails permanently after 7 consecutive misses at rate 0.2.
	base.Retries = 6
	want, _ := singleProcess(t, base)

	// Schedules are independent; run a few at a time to bound the
	// process fan-out (each schedule spawns its own worker processes).
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for seed := 0; seed < n; seed++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				cfg := base
				cfg.StorePath = fmt.Sprintf("%s/merged.jsonl", t.TempDir())
				cfg.Faults = fmt.Sprintf(
					"seed=%d,workerkill=0.5,workerhang=0.08,workertear=0.25,store=0.2,slow=0.3,slowdelay=2ms",
					seed)
				sum, got, err := runFabric(t, cfg)
				if err != nil {
					t.Fatalf("schedule failed: %v\nshards: %+v", err, sum.Shards)
				}
				if got != want {
					t.Fatalf("schedule converged to different output (%d bytes vs %d reference)",
						len(got), len(want))
				}
				if sum.Merge.Duplicates != 0 {
					t.Fatalf("committed cells were recomputed: %+v", sum.Merge)
				}
				if sum.Report.Live != 0 {
					t.Fatalf("render pass resimulated %d cells", sum.Report.Live)
				}
			})
		}(seed)
	}
	wg.Wait()
}
