package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ilp/internal/experiments"
	"ilp/internal/ilperr"
	"ilp/internal/store"
)

// TestMain lets this test binary double as a shard worker: the
// coordinator tests set ILP_FABRIC_WORKER=1 in the argv they spawn, and
// the re-exec'd binary lands in WorkerMain instead of the test runner —
// the same re-exec trick cmd/ilpfab plays with its "worker" subcommand.
func TestMain(m *testing.M) {
	if os.Getenv("ILP_FABRIC_WORKER") == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestPartition: round-robin, no empty shards, order preserved in shard.
func TestPartition(t *testing.T) {
	benches := []string{"a", "b", "c", "d", "e"}
	shards := Partition(benches, 2)
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	if !reflect.DeepEqual(shards[0].Benchmarks, []string{"a", "c", "e"}) ||
		!reflect.DeepEqual(shards[1].Benchmarks, []string{"b", "d"}) {
		t.Fatalf("round-robin wrong: %+v", shards)
	}
	if shards[0].ID != "shard0" || shards[1].ID != "shard1" {
		t.Fatalf("shard ids wrong: %+v", shards)
	}
	// More shards than benchmarks: one benchmark per shard, none empty.
	if got := Partition([]string{"x", "y"}, 5); len(got) != 2 {
		t.Fatalf("over-sharding made %d shards, want 2", len(got))
	}
	if got := Partition(benches, 0); len(got) != 1 || len(got[0].Benchmarks) != 5 {
		t.Fatalf("n=0 should mean one shard with everything: %+v", got)
	}
}

// testConfig is the shared tiny sweep: one cheap experiment over two
// benchmarks, split two ways.
func testConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		Shards:            2,
		StorePath:         filepath.Join(dir, "merged.jsonl"),
		MaxDegree:         2,
		Benchmarks:        []string{"whet", "linpack"},
		Experiments:       []string{"fig4-1"},
		Workers:           1,
		WorkerArgv:        []string{os.Args[0]},
		WorkerEnv:         []string{"ILP_FABRIC_WORKER=1"},
		Lease:             2 * time.Second,
		Heartbeat:         20 * time.Millisecond,
		RestartBackoff:    time.Millisecond,
		RestartBackoffMax: 5 * time.Millisecond,
	}
}

// singleProcess renders the same sweep in-process — the byte-identity
// reference for every fabric run.
func singleProcess(t *testing.T, cfg Config) (string, experiments.SweepReport) {
	t.Helper()
	r := experiments.NewRunner(experiments.Config{
		MaxDegree: cfg.MaxDegree, Benchmarks: cfg.Benchmarks, Workers: 1,
	})
	var buf bytes.Buffer
	ids := cfg.Experiments
	if len(ids) == 0 {
		ids = canonicalIDs()
	}
	for _, id := range ids {
		res, err := r.RunCtx(context.Background(), id)
		if err != nil {
			t.Fatalf("reference run %s: %v", id, err)
		}
		fmt.Fprintf(&buf, "==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
	}
	return buf.String(), r.Report()
}

func runFabric(t *testing.T, cfg Config) (Summary, string, error) {
	t.Helper()
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sum, err := coord.Run(context.Background(), &out)
	return sum, out.String(), err
}

// TestFabricHappyPath: a fault-free sharded run renders byte-identical
// output to the single-process sweep, with no restarts and the render
// pass resolving everything from the merged store.
func TestFabricHappyPath(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	want, wantRep := singleProcess(t, cfg)
	sum, got, err := runFabric(t, cfg)
	if err != nil {
		t.Fatalf("fabric run: %v\nshards: %+v", err, sum.Shards)
	}
	if got != want {
		t.Fatalf("fabric output differs from single-process run:\nfabric %d bytes, reference %d bytes",
			len(got), len(want))
	}
	if sum.Restarts != 0 {
		t.Fatalf("fault-free run restarted %d times", sum.Restarts)
	}
	if sum.Merge.Duplicates != 0 || sum.Merge.Conflicts != 0 {
		t.Fatalf("disjoint shards produced duplicates: %+v", sum.Merge)
	}
	if sum.Report.Live != 0 {
		t.Fatalf("render pass simulated %d cells live; all should resume from the merge", sum.Report.Live)
	}
	if sum.Report.Cells != wantRep.Cells {
		t.Fatalf("fabric committed %d cells, single process %d", sum.Report.Cells, wantRep.Cells)
	}
}

// TestFabricSurvivesWorkerKills is the kill-anywhere guarantee in
// miniature: at injection rate 1 every worker is SIGKILLed after every
// live commit, so the sweep advances exactly one durable cell per
// process. The coordinator must restart its way through and still
// produce byte-identical output with zero recomputation.
func TestFabricSurvivesWorkerKills(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Faults = "seed=7,workerkill=1"
	cfg.MaxRestarts = 16
	want, _ := singleProcess(t, cfg)
	sum, got, err := runFabric(t, cfg)
	if err != nil {
		t.Fatalf("fabric under kill injection: %v\nshards: %+v", err, sum.Shards)
	}
	if got != want {
		t.Fatal("output after kill-everywhere injection differs from fault-free run")
	}
	if sum.Restarts == 0 {
		t.Fatal("kill injection at rate 1 caused no restarts — the chaos site is dead")
	}
	// Zero recomputation, by both witnesses: no committed cell appears
	// twice across the shard stores, and the render pass resimulated
	// nothing.
	if sum.Merge.Duplicates != 0 {
		t.Fatalf("restarted workers recomputed committed cells: %+v", sum.Merge)
	}
	if sum.Report.Live != 0 {
		t.Fatalf("render pass had to resimulate %d cells", sum.Report.Live)
	}
	// Every surviving attempt resumed its predecessors' cells.
	for _, sh := range sum.Shards {
		if sh.Attempts > 1 && sh.Report.Resumed == 0 {
			t.Fatalf("shard %s restarted %d times but resumed nothing", sh.ID, sh.Attempts-1)
		}
	}
}

// TestFabricTearRepairedOnResume: the workertear site crashes workers
// mid-append; the torn tails must be dropped by CRC repair on the next
// open and at merge, and the final output must still be byte-identical.
func TestFabricTearRepairedOnResume(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Faults = "seed=3,workertear=1"
	cfg.MaxRestarts = 16
	want, _ := singleProcess(t, cfg)
	sum, got, err := runFabric(t, cfg)
	if err != nil {
		t.Fatalf("fabric under tear injection: %v\nshards: %+v", err, sum.Shards)
	}
	if got != want {
		t.Fatal("output after tear injection differs from fault-free run")
	}
	if sum.Restarts == 0 {
		t.Fatal("tear injection caused no restarts")
	}
	if sum.Merge.Duplicates != 0 || sum.Report.Live != 0 {
		t.Fatalf("tear recovery recomputed cells: merge %+v, render live %d", sum.Merge, sum.Report.Live)
	}
}

// TestFabricRevokesHungWorker: a worker that goes silent (workerhang)
// must be recovered by lease expiry — process death never happens on its
// own — and the sweep must still complete correctly.
func TestFabricRevokesHungWorker(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	// At rate 1 every attempt that performs a live commit hangs right
	// after it; the batched runner commits the whole slab before the
	// observer fires, so attempt 0 lands every cell and attempt 1
	// resumes them all from the store and finishes without a hang.
	cfg.Benchmarks = []string{"whet"}
	cfg.Shards = 1
	cfg.Experiments = []string{"fig4-5"} // 2 cells: few, cheap attempts
	cfg.Faults = "seed=1,workerhang=1"
	cfg.MaxRestarts = 8
	cfg.Lease = 300 * time.Millisecond
	cfg.Heartbeat = 20 * time.Millisecond
	want, _ := singleProcess(t, cfg)
	sum, got, err := runFabric(t, cfg)
	if err != nil {
		t.Fatalf("fabric under hang injection: %v\nshards: %+v", err, sum.Shards)
	}
	if got != want {
		t.Fatal("output after hang injection differs from fault-free run")
	}
	revocations := 0
	for _, sh := range sum.Shards {
		revocations += sh.Revocations
	}
	if revocations == 0 {
		t.Fatal("hang injection at rate 1 never tripped the lease watchdog")
	}
	if sum.Report.Live != 0 || sum.Merge.Duplicates != 0 {
		t.Fatalf("hang recovery recomputed cells: merge %+v, render live %d", sum.Merge, sum.Report.Live)
	}
}

// TestFabricRetriesExhausted: when the fault schedule outlives the
// restart budget, the shard fails with a transient WorkerError and the
// run reports it rather than spinning forever.
func TestFabricRetriesExhausted(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Faults = "seed=7,workerkill=1"
	cfg.MaxRestarts = 1 // 4 cells per shard need 4 restarts; 1 cannot finish
	sum, _, err := runFabric(t, cfg)
	if err == nil {
		t.Fatalf("sweep impossibly completed within 1 restart: %+v", sum)
	}
	var werr *WorkerError
	if !errors.As(err, &werr) {
		t.Fatalf("terminal failure is not a WorkerError: %v", err)
	}
	if !ilperr.IsTransient(werr) {
		t.Fatalf("a kill should classify transient even when the budget runs out: %v", werr)
	}
	for _, sh := range sum.Shards {
		if sh.Err != nil && sh.Attempts != cfg.MaxRestarts+1 {
			t.Fatalf("failed shard %s ran %d attempts, want %d", sh.ID, sh.Attempts, cfg.MaxRestarts+1)
		}
	}
}

// TestFabricPermanentFailureDoesNotRestart: a shard that can never
// succeed (unknown benchmark) fails on its first attempt — restarting a
// deterministic failure burns time for nothing.
func TestFabricPermanentFailureDoesNotRestart(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Benchmarks = []string{"no-such-benchmark"}
	cfg.Shards = 1
	sum, _, err := runFabric(t, cfg)
	if err == nil {
		t.Fatal("sweep of an unknown benchmark succeeded")
	}
	var werr *WorkerError
	if !errors.As(err, &werr) || !werr.Permanent {
		t.Fatalf("unknown benchmark should be a permanent WorkerError: %v", err)
	}
	if sum.Shards[0].Attempts != 1 {
		t.Fatalf("permanent failure was retried: %d attempts", sum.Shards[0].Attempts)
	}
	if !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Fatalf("terminal error does not name the cause: %v", err)
	}
}

// TestFabricShardStoresAreFirstClass: after a run, each shard store and
// the merged store open cleanly and the merged store holds exactly the
// union of the shards.
func TestFabricShardStoresAreFirstClass(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	sum, _, err := runFabric(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	union := 0
	coord, _ := New(cfg)
	for i := 0; i < cfg.Shards; i++ {
		recs, _, err := store.Load(coord.ShardStorePath(i))
		if err != nil {
			t.Fatalf("shard store %d unreadable: %v", i, err)
		}
		union += len(recs)
	}
	if union != sum.Merge.Records {
		t.Fatalf("merged %d records from a union of %d", sum.Merge.Records, union)
	}
	st, err := store.Open(cfg.StorePath)
	if err != nil {
		t.Fatalf("merged store does not reopen: %v", err)
	}
	defer st.Close()
	if st.Len() != sum.Merge.Records {
		t.Fatalf("merged store holds %d records, summary says %d", st.Len(), sum.Merge.Records)
	}
}
