// Package fabric is the crash-tolerant sharded sweep fabric: a coordinator
// that partitions a benchmark sweep into shards, runs each shard in a
// supervised worker process, and joins the shards' durable results into
// one canonical store whose rendition is byte-identical to a
// single-process run.
//
// The design splits responsibility along the process boundary:
//
//   - The worker is just the existing experiment pipeline. It opens its
//     own shard store (taking the store's advisory writer lock), sweeps
//     its benchmark subset through experiments.Runner, and commits every
//     cell through the store's append-fsync path. It owns no retry or
//     recovery logic beyond what the runner already has: crash recovery
//     is entirely the coordinator's problem.
//
//   - The coordinator owns supervision. Each shard runs under a heartbeat
//     lease: worker events (hello, cell commits, pings) renew it, and a
//     watchdog revokes the lease and kills the process when it lapses —
//     which catches hangs, not just crashes. A worker that dies, hangs,
//     or exits nonzero is restarted with capped exponential backoff (the
//     ilperr taxonomy decides restartability: crashes and lease
//     revocations are transient, a worker that reports a permanent
//     pipeline failure is not). Restarted workers reopen their shard
//     store and resume: committed cells preload the sim cache, so no
//     committed cell is ever recomputed.
//
// The two halves speak newline-delimited JSON: the coordinator writes one
// ShardSpec line to the worker's stdin and then holds the pipe open — a
// worker that sees stdin close knows its coordinator died and cancels —
// and the worker emits one Event per line on stdout.
//
// Recovery correctness rests on three properties, each owned by an
// existing layer rather than re-proved here:
//
//   - Commit durability: a cell is observable (and can trigger an
//     injected crash) only after its store append returned from fsync,
//     so SIGKILL at any observable point loses no acknowledged cell.
//   - Torn tails: a SIGKILL mid-append leaves a torn final line, which
//     store.Load drops by CRC — the cell was never acknowledged.
//   - Merge idempotence: store.Merge is a pure function of the union of
//     shard records (sorted, deduplicated by fingerprint), so re-merging
//     after any crash, in any shard order, yields identical bytes.
//
// Together these give the kill-anywhere guarantee the chaos suite
// exercises: SIGKILL workers at injector-chosen commit points, and the
// merged, rendered output is byte-identical to a fault-free run.
package fabric

import (
	"fmt"

	"ilp/internal/experiments"
)

// canonicalIDs is every experiment id in the paper's presentation order —
// the order `ilpbench all` renders, which the fabric's rendition must
// match byte for byte.
func canonicalIDs() []string {
	all := experiments.Experiments()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// Shard is one unit of supervised work: a named subset of the benchmark
// suite. Benchmarks partition cleanly because every cache key (compile,
// sim, store) begins with the benchmark name — two shards can never
// contend for, or duplicate, a cell.
type Shard struct {
	// ID names the shard ("shard0", "shard1", ...) — the key of its
	// lease and the stem of its store file.
	ID string
	// Benchmarks is this shard's benchmark subset, in suite order.
	Benchmarks []string
}

// Partition splits the benchmark list round-robin into at most n shards.
// Round-robin (rather than contiguous ranges) spreads the expensive
// benchmarks across shards, since cost correlates with suite position.
// Fewer benchmarks than shards yields fewer shards, never empty ones.
func Partition(benchmarks []string, n int) []Shard {
	if n < 1 {
		n = 1
	}
	if n > len(benchmarks) {
		n = len(benchmarks)
	}
	shards := make([]Shard, n)
	for i := range shards {
		shards[i].ID = fmt.Sprintf("shard%d", i)
	}
	for i, b := range benchmarks {
		s := &shards[i%n]
		s.Benchmarks = append(s.Benchmarks, b)
	}
	return shards
}
