package fabric

import (
	"testing"
	"time"
)

// fakeClock is a hand-cranked clock for lease expiry tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newTestTable(ttl time.Duration) (*LeaseTable, *fakeClock) {
	c := newFakeClock()
	return NewLeaseTable(ttl, c.now), c
}

// TestLeaseRenewKeepsAlive: a renewing worker is never revoked, however
// much total time passes.
func TestLeaseRenewKeepsAlive(t *testing.T) {
	tab, clock := newTestTable(100 * time.Millisecond)
	killed := false
	tab.Grant("shard0", func() { killed = true })
	for i := 0; i < 20; i++ {
		clock.advance(50 * time.Millisecond)
		if !tab.Renew("shard0") {
			t.Fatalf("renew %d failed on a live lease", i)
		}
		if got := tab.Sweep(); len(got) != 0 {
			t.Fatalf("sweep revoked a renewing lease: %v", got)
		}
	}
	if killed {
		t.Fatal("revoke hook fired on a renewing lease")
	}
}

// TestLeaseExpiresAndRevokes: silence past the TTL revokes exactly the
// silent shard and fires its kill hook once.
func TestLeaseExpiresAndRevokes(t *testing.T) {
	tab, clock := newTestTable(100 * time.Millisecond)
	kills := 0
	tab.Grant("shard0", func() { kills++ })
	tab.Grant("shard1", nil)

	clock.advance(90 * time.Millisecond)
	tab.Renew("shard1")
	clock.advance(20 * time.Millisecond) // shard0 at 110ms, shard1 at 20ms
	revoked := tab.Sweep()
	if len(revoked) != 1 || revoked[0] != "shard0" {
		t.Fatalf("sweep revoked %v, want [shard0]", revoked)
	}
	if kills != 1 {
		t.Fatalf("kill hook fired %d times, want 1", kills)
	}
	// Revocation is final: no renewal resurrects it, no double kill.
	if tab.Renew("shard0") {
		t.Fatal("renew succeeded on a revoked lease")
	}
	if !tab.Revoked("shard0") {
		t.Fatal("Revoked does not report the revocation")
	}
	if got := tab.Sweep(); len(got) != 0 || kills != 1 {
		t.Fatalf("second sweep re-revoked: %v (kills %d)", got, kills)
	}
}

// TestLeaseDropForgets: a dropped lease neither expires nor renews — the
// attempt ended and its process is already reaped.
func TestLeaseDropForgets(t *testing.T) {
	tab, clock := newTestTable(50 * time.Millisecond)
	killed := false
	tab.Grant("shard0", func() { killed = true })
	tab.Drop("shard0")
	clock.advance(time.Hour)
	if got := tab.Sweep(); len(got) != 0 || killed {
		t.Fatalf("dropped lease still live: revoked %v, killed %v", got, killed)
	}
	if tab.Renew("shard0") {
		t.Fatal("renew succeeded on a dropped lease")
	}
}

// TestLeaseRegrantReplacesRevoked: a restart grants a fresh lease for the
// same shard; the predecessor's revocation does not taint it.
func TestLeaseRegrantReplacesRevoked(t *testing.T) {
	tab, clock := newTestTable(50 * time.Millisecond)
	tab.Grant("shard0", nil)
	clock.advance(60 * time.Millisecond)
	if got := tab.Sweep(); len(got) != 1 {
		t.Fatalf("setup: lease should have expired, got %v", got)
	}
	tab.Grant("shard0", nil)
	if !tab.Renew("shard0") {
		t.Fatal("fresh lease after regrant does not renew")
	}
	if tab.Revoked("shard0") {
		t.Fatal("regranted lease still reports revoked")
	}
}

// TestLeaseGrantForStartupGrace: the initial grant survives its longer
// grace TTL, and the first renew snaps the lease to the steady-state TTL.
func TestLeaseGrantForStartupGrace(t *testing.T) {
	tab, clock := newTestTable(100 * time.Millisecond)
	killed := false
	tab.GrantFor("shard0", time.Second, func() { killed = true })

	// Silent through 900ms of startup: within grace, not revoked.
	clock.advance(900 * time.Millisecond)
	if got := tab.Sweep(); len(got) != 0 {
		t.Fatalf("swept %v during startup grace", got)
	}

	// First event renews — from here the steady TTL governs.
	if !tab.Renew("shard0") {
		t.Fatal("renew failed within the grace period")
	}
	clock.advance(150 * time.Millisecond)
	if got := tab.Sweep(); len(got) != 1 || got[0] != "shard0" {
		t.Fatalf("steady-state expiry not enforced after first renew: swept %v", got)
	}
	if !killed {
		t.Fatal("revoke hook did not fire")
	}
}
