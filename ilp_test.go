package ilp_test

import (
	"strings"
	"testing"

	"ilp"
)

const tiny = `
var total: int;
func main() {
	var i: int;
	for i = 1 to 100 { total = total + i; }
	print(total);
}
`

func TestCompileAndRun(t *testing.T) {
	p, err := ilp.Compile(tiny, ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Output) != 1 || r.Output[0].String() != "5050" {
		t.Errorf("output = %v, want [5050]", r.Output)
	}
	if p.StaticInstructions() == 0 {
		t.Error("no code generated")
	}
	if !strings.Contains(p.Disassemble(), "main") {
		t.Error("disassembly missing main")
	}
}

func TestInterpretMatchesSimulation(t *testing.T) {
	want, err := ilp.Interpret(tiny)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ilp.Compile(tiny, ilp.MultiTitan(), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(r.Output) || !want[0].Equal(r.Output[0]) {
		t.Errorf("interp %v vs sim %v", want, r.Output)
	}
}

func TestPresetsDistinct(t *testing.T) {
	ms := []*ilp.Machine{
		ilp.BaseMachine(), ilp.Superscalar(4), ilp.Superpipelined(4),
		ilp.SuperpipelinedSuperscalar(2, 2), ilp.MultiTitan(), ilp.CRAY1(),
		ilp.Underpipelined(),
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m == nil || m.Name == "" {
			t.Fatal("preset missing name")
		}
		if seen[m.Name] {
			t.Errorf("duplicate preset name %s", m.Name)
		}
		seen[m.Name] = true
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestRunBenchmarkAndParallelism(t *testing.T) {
	base, err := ilp.RunBenchmark("whet", ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := ilp.RunBenchmark("whet", ilp.Superscalar(4), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp := wide.SpeedupOver(base)
	if sp < 1.0 || sp > 4.0 {
		t.Errorf("speedup %v out of range", sp)
	}
	par, err := ilp.Parallelism("whet", 4, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par < sp-0.01 || par > sp+0.01 {
		t.Errorf("Parallelism (%v) should equal the measured speedup (%v)", par, sp)
	}
	if _, err := ilp.Parallelism("whet", 0, ilp.Options{}); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := ilp.RunBenchmark("nope", ilp.BaseMachine(), ilp.Options{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarksListed(t *testing.T) {
	names := ilp.Benchmarks()
	if len(names) != 8 {
		t.Fatalf("suite size %d", len(names))
	}
	src, err := ilp.BenchmarkSource("yacc")
	if err != nil || !strings.Contains(src, "func main") {
		t.Errorf("yacc source missing: %v", err)
	}
}

func TestOptionLevels(t *testing.T) {
	// WithLevel(O0) must actually compile at O0 (more instructions than
	// the default O4).
	p0, err := ilp.Compile(tiny, ilp.BaseMachine(), ilp.WithLevel(ilp.O0))
	if err != nil {
		t.Fatal(err)
	}
	p4, err := ilp.Compile(tiny, ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := p0.Run()
	if err != nil {
		t.Fatal(err)
	}
	r4, err := p4.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r4.Instructions >= r0.Instructions {
		t.Errorf("O4 (%d instrs) should beat O0 (%d)", r4.Instructions, r0.Instructions)
	}
	if !r0.Output[0].Equal(r4.Output[0]) {
		t.Error("levels disagree on output")
	}
}

func TestHarmonicMeanExported(t *testing.T) {
	if hm := ilp.HarmonicMean([]float64{2, 2}); hm != 2 {
		t.Errorf("HarmonicMean = %v", hm)
	}
}

func TestCustomMachineAdjustment(t *testing.T) {
	m := ilp.Superscalar(2)
	m.Latency[ilp.ClassLoad] = 5
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	slow, err := ilp.RunBenchmark("yacc", m, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ilp.RunBenchmark("yacc", ilp.Superscalar(2), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.BaseCycles <= fast.BaseCycles {
		t.Error("raising load latency should cost cycles")
	}
	deg := ilp.AverageDegreeOfSuperpipelining(m, slow.ClassCounts)
	if deg <= 1.0 {
		t.Errorf("average degree of superpipelining %v should exceed 1 with 5-cycle loads", deg)
	}
}
