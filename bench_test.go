// bench_test.go gives every table and figure of the paper a testing.B
// entry point, so `go test -bench=.` regenerates the whole evaluation and
// reports each experiment's headline number as a custom metric. Benchmarks
// default to a reduced sweep (degree 4, a two-benchmark subset) so one
// iteration stays fast; run cmd/ilpbench for the full-size reproduction.
package ilp_test

import (
	"context"
	"io"
	"testing"

	"ilp/internal/experiments"
	"ilp/internal/metrics"
)

// quickCfg keeps one benchmark iteration small.
func quickCfg() experiments.Config {
	return experiments.Config{
		MaxDegree:  4,
		Benchmarks: []string{"yacc", "whet"},
	}
}

// runExperiment is the common body: a fresh runner per iteration (no
// cross-iteration caching), reporting a headline metric from the result.
func runExperiment(b *testing.B, id string, cfg experiments.Config, metric func(*experiments.Result) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(cfg)
		res, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			name, v := metric(res)
			b.ReportMetric(v, name)
		}
	}
}

func lastY(s metrics.Series) float64 {
	return s.Y[len(s.Y)-1]
}

func BenchmarkFig2Diagrams(b *testing.B) {
	runExperiment(b, "fig2", quickCfg(), nil)
}

func BenchmarkTable2_1(b *testing.B) {
	runExperiment(b, "tab2-1", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "cray1-degree", res.Series[0].Y[1]
	})
}

func BenchmarkFig4_1(b *testing.B) {
	runExperiment(b, "fig4-1", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "ss-hm-speedup", lastY(res.Series[0])
	})
}

func BenchmarkFig4_2(b *testing.B) {
	runExperiment(b, "fig4-2", quickCfg(), nil)
}

func BenchmarkFig4_3(b *testing.B) {
	runExperiment(b, "fig4-3", quickCfg(), nil)
}

func BenchmarkFig4_4(b *testing.B) {
	runExperiment(b, "fig4-4", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "cray-actual-speedup", lastY(res.Series[1])
	})
}

func BenchmarkFig4_5(b *testing.B) {
	runExperiment(b, "fig4-5", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "min-parallelism", lastY(res.Series[0])
	})
}

func BenchmarkFig4_6(b *testing.B) {
	cfg := quickCfg()
	cfg.Benchmarks = nil // fig4-6 uses linpack/livermore internally
	runExperiment(b, "fig4-6", cfg, func(res *experiments.Result) (string, float64) {
		return "linpack-careful-x10", lastY(res.Series[1])
	})
}

func BenchmarkFig4_7(b *testing.B) {
	runExperiment(b, "fig4-7", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "left-graph-parallelism", res.Series[0].Y[0]
	})
}

func BenchmarkFig4_8(b *testing.B) {
	runExperiment(b, "fig4-8", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "O4-parallelism", lastY(res.Series[0])
	})
}

func BenchmarkTable5_1(b *testing.B) {
	runExperiment(b, "tab5-1", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "future-miss-cost-instr", res.Series[0].Y[2]
	})
}

func BenchmarkSec5_1(b *testing.B) {
	runExperiment(b, "sec5-1", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "cached-speedup", res.Series[0].Y[1]
	})
}

// Ablations (DESIGN.md §5).

func BenchmarkAblationBranchRule(b *testing.B) {
	runExperiment(b, "abl-branch", quickCfg(), nil)
}

func BenchmarkAblationTempBudget(b *testing.B) {
	cfg := quickCfg()
	cfg.Benchmarks = nil
	runExperiment(b, "abl-temps", cfg, nil)
}

func BenchmarkAblationScheduling(b *testing.B) {
	runExperiment(b, "abl-sched", quickCfg(), nil)
}

func BenchmarkAblationMemdep(b *testing.B) {
	runExperiment(b, "abl-memdep", quickCfg(), nil)
}

// Extensions: prose claims of the paper, measured.

func BenchmarkExtClassConflicts(b *testing.B) {
	runExperiment(b, "ext-conflicts", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "conflict-speedup", lastY(res.Series[1])
	})
}

func BenchmarkExtVLIWDensity(b *testing.B) {
	runExperiment(b, "ext-vliw", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "slot-utilization", res.Series[0].Y[0]
	})
}

func BenchmarkExtICacheUnrolling(b *testing.B) {
	cfg := quickCfg()
	cfg.Benchmarks = nil
	runExperiment(b, "ext-icache", cfg, func(res *experiments.Result) (string, float64) {
		return "cached-x10-speedup", lastY(res.Series[1])
	})
}

func BenchmarkExtTraceLimits(b *testing.B) {
	runExperiment(b, "ext-limits", quickCfg(), func(res *experiments.Result) (string, float64) {
		return "oracle-parallelism", lastY(res.Series[2])
	})
}

// BenchmarkRunAllQuick is the end-to-end wall time of regenerating every
// experiment on the reduced sweep with one shared runner — the number
// BENCH_sim.json tracks as "RunAll wall time".
func BenchmarkRunAllQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(quickCfg())
		if _, err := r.RunAll(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllBatched regenerates the full reduced sweep on a batchable
// runner (no retries, no store, no faults — the default CLI shape), so
// measureMany routes its cache-miss cells through the shared sim.Batch, and
// reports end-to-end simulated Minstr/s — the sweep-level throughput the
// batched scheduler and superblock replay raise together.
func BenchmarkRunAllBatched(b *testing.B) {
	var instrs int64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(quickCfg())
		if _, err := r.RunAll(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
		st := r.Stats()
		if st.BatchedCells == 0 {
			b.Fatal("sweep ran no cells through the batch scheduler")
		}
		instrs += st.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkRunAllParallel is BenchmarkRunAllBatched with the batch sharded
// across four workers regardless of the host shape (sharding never changes
// results, only concurrency): the headline number of the multi-core batch
// scheduler. On a single-core host the shards time-slice and throughput
// matches the batched number; on a 4-core runner it approaches 4×.
func BenchmarkRunAllParallel(b *testing.B) {
	cfg := quickCfg()
	cfg.Workers = 4
	var instrs int64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(cfg)
		if _, err := r.RunAll(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
		st := r.Stats()
		if st.BatchedCells == 0 || st.ParallelShards == 0 {
			b.Fatalf("sweep did not run sharded batches: %+v", st)
		}
		instrs += st.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkExperimentCacheSharing runs the three cache-geometry experiments
// on one runner and reports how much work the two-level cache eliminated:
// cache-only machine variants share compilations (compile-hits) and repeated
// measurements share simulations (sim-hits).
func BenchmarkExperimentCacheSharing(b *testing.B) {
	cfg := quickCfg()
	cfg.Benchmarks = nil
	var st experiments.RunnerStats
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(cfg)
		for _, id := range []string{"tab5-1", "sec5-1", "ext-icache"} {
			if _, err := r.Run(id); err != nil {
				b.Fatal(err)
			}
		}
		st = r.Stats()
	}
	b.ReportMetric(float64(st.Compiles), "compiles")
	b.ReportMetric(float64(st.CompileHits), "compile-hits")
	b.ReportMetric(float64(st.Sims), "sims")
	b.ReportMetric(float64(st.SimHits), "sim-hits")
}
