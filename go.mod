module ilp

go 1.22
