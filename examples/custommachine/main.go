// Custommachine shows the §3 machine-description interface: build a
// machine that is not one of the paper's presets — a two-issue design with
// realistic latencies and an un-duplicated floating-point unit — and see
// how class conflicts and latency eat into the ideal speedup, then compute
// its average degree of superpipelining from a measured instruction mix.
package main

import (
	"fmt"
	"log"

	"ilp"
)

func main() {
	// Start from an ideal 2-issue superscalar and make it realistic.
	m := ilp.Superscalar(2)
	m.Name = "dual-issue-1989"

	// Realistic latencies (in cycles): loads take 2, floating point 3,
	// like the MultiTitan.
	m.Latency[ilp.ClassLoad] = 2
	m.Latency[ilp.ClassStore] = 2
	m.Latency[ilp.ClassBranch] = 2
	m.Latency[ilp.ClassFPAddSub] = 3
	m.Latency[ilp.ClassFPMul] = 3
	m.Latency[ilp.ClassFPDiv] = 12
	m.Latency[ilp.ClassIntMul] = 4

	// Only one copy of the expensive units: class conflicts (§2.3.2).
	for i := range m.Units {
		switch m.Units[i].Name {
		case "fpaddsub", "fpmul", "fpdiv", "load", "store":
			m.Units[i].Multiplicity = 1
		}
	}
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %10s %10s\n", "benchmark", "base", "ideal x2", m.Name)
	for _, bench := range ilp.Benchmarks() {
		base, err := ilp.RunBenchmark(bench, ilp.BaseMachine(), ilp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ideal, err := ilp.RunBenchmark(bench, ilp.Superscalar(2), ilp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		real, err := ilp.RunBenchmark(bench, m, ilp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.2f %10.2f %10.2f\n",
			bench, 1.0, ideal.SpeedupOver(base), real.SpeedupOver(base))

		if bench == "stanford" {
			// The §2.7 metric for this machine under this benchmark's
			// dynamic mix: how much latency-overlap parallelism the
			// pipeline already demands before any parallel issue.
			deg := ilp.AverageDegreeOfSuperpipelining(m, real.ClassCounts)
			fmt.Printf("%-10s average degree of superpipelining on this mix: %.2f\n", "", deg)
		}
	}
	fmt.Println("\nideal x2 duplicates every unit; the custom machine pays for class conflicts")
	fmt.Println("and real latencies, so some of its dual-issue benefit was already spent on")
	fmt.Println("covering its own pipeline (the paper's Figure 4-3/4-4 argument).")
}
