// Limits contrasts three answers to "how much instruction-level
// parallelism does this program have?" for each benchmark:
//
//  1. what a real compiler and a real in-order superscalar machine get
//     (the paper's measurement),
//  2. the trace-driven limit with conditional branches respected
//     (Riseman & Foster's "inhibition", the paper's quoted ~2), and
//  3. the perfect-prediction oracle (their famous order-of-magnitude
//     higher bound).
package main

import (
	"fmt"
	"log"

	"ilp"
)

func main() {
	fmt.Println("parallelism: machine-measured vs. trace limits (§4.2's framing)")
	fmt.Printf("\n%-10s %9s %9s %9s\n", "benchmark", "compiled", "blocked", "oracle")
	for _, name := range ilp.Benchmarks() {
		compiled, err := ilp.Parallelism(name, 8, ilp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		lim, err := ilp.MeasureTraceLimits(name, 500_000)
		if err != nil {
			log.Fatal(err)
		}
		note := " "
		if lim.Truncated {
			note = "*"
		}
		fmt.Printf("%-10s %9.2f %9.2f %9.2f%s\n", name, compiled, lim.Blocked, lim.Oracle, note)
	}
	fmt.Println("\n(* trace truncated at 500k instructions)")
	fmt.Println("\nThe compiled numbers sit at or below the blocked limit — a real register file,")
	fmt.Println("in-order issue, and a compile-time scheduler can only lose parallelism from")
	fmt.Println("there. The oracle column is why later work (including Wall's own 1991 'Limits")
	fmt.Println("of Instruction-Level Parallelism') chased branch prediction so hard.")
}
