// Quickstart: write a small TL program, compile it for two machines from
// the paper's taxonomy, and compare — the whole methodology in thirty
// lines.
package main

import (
	"fmt"
	"log"

	"ilp"
)

const program = `
// Dot product with a branchy twist: how much instruction-level
// parallelism does this program actually have?
var x[512]: real;
var y[512]: real;

func main() {
	var i: int;
	for i = 0 to 511 {
		x[i] = float(i % 9) * 0.25;
		y[i] = float(i % 7) * 0.5;
	}
	var dot: real;
	var bigs: int;
	dot = 0.0;
	bigs = 0;
	for i = 0 to 511 {
		dot = dot + x[i] * y[i];
		if x[i] > 1.5 { bigs = bigs + 1; }
	}
	print(dot);
	print(bigs);
}
`

func main() {
	// The reference interpreter gives ground-truth output.
	out, err := ilp.Interpret(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("interpreter says:", out)

	// Compile for the base machine (1 instruction/cycle, unit latency).
	base, err := ilp.Compile(program, ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rb, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base machine:        %8.0f cycles (%d instructions)\n", rb.BaseCycles, rb.Instructions)

	// Compile for an ideal 4-issue superscalar and compare.
	wide, err := ilp.Compile(program, ilp.Superscalar(4), ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rw, err := wide.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-wide superscalar:  %8.0f cycles, speedup %.2f\n", rw.BaseCycles, rw.SpeedupOver(rb))
	fmt.Println("simulator says:     ", rw.Output)

	// And a superpipelined machine of the same degree (§2.7: roughly
	// equivalent, slightly behind due to the startup transient).
	deep, err := ilp.Compile(program, ilp.Superpipelined(4), ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rd, err := deep.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree-4 superpipe:  %8.0f base cycles, speedup %.2f\n", rd.BaseCycles, rd.SpeedupOver(rb))
}
