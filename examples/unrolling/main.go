// Unrolling reproduces the §4.4 loop-unrolling study on a single kernel: a
// daxpy-plus-reduction loop unrolled 1..10 times, naively and carefully,
// measured on a wide ideal superscalar with the 40-temporary register file
// the paper used for this experiment.
package main

import (
	"fmt"
	"log"

	"ilp"
)

const kernel = `
var x[512]: real;
var y[512]: real;

func main() {
	var i: int;
	for i = 0 to 511 {
		x[i] = float(i % 11) * 0.25;
		y[i] = 1.0;
	}
	var s: real;
	var pass: int;
	s = 0.0;
	for pass = 1 to 40 {
		s = 0.0;
		for i = 0 to 511 {
			y[i] = y[i] + 2.5 * x[i];
			s = s + x[i];
		}
	}
	print(s);
}
`

func measure(unroll int, careful bool) (float64, error) {
	widen := func(m *ilp.Machine) *ilp.Machine {
		m.IntTemps, m.FPTemps = 40, 40
		m.IntHomes, m.FPHomes = 10, 10
		return m
	}
	opts := ilp.Options{Unroll: unroll, Careful: careful}
	pb, err := ilp.Compile(kernel, widen(ilp.BaseMachine()), opts)
	if err != nil {
		return 0, err
	}
	rb, err := pb.Run()
	if err != nil {
		return 0, err
	}
	pw, err := ilp.Compile(kernel, widen(ilp.Superscalar(8)), opts)
	if err != nil {
		return 0, err
	}
	rw, err := pw.Run()
	if err != nil {
		return 0, err
	}
	return rb.BaseCycles / rw.BaseCycles, nil
}

func main() {
	fmt.Println("available parallelism of the kernel (8-wide ideal superscalar, 40 temps):")
	fmt.Println("\nunroll   naive   careful")
	for _, k := range []int{1, 2, 4, 10} {
		n, err := measure(k, false)
		if err != nil {
			log.Fatal(err)
		}
		c, err := measure(k, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %6.2f  %8.2f\n", k, n, c)
	}
	fmt.Println("\nnaive unrolling flattens: the reduction chain and unanalyzed stores impose a")
	fmt.Println("sequential frame. careful unrolling reassociates the reduction and lets loads")
	fmt.Println("from later copies pass earlier stores (§4.4, Figure 4-6).")
}
