// Crosspoint sweeps superscalar and superpipelined machines of increasing
// degree over one benchmark — a single-benchmark slice of Figure 4-1 that
// shows where extra degree stops paying (the "supersymmetry" result and
// the ~2 parallelism ceiling for non-numeric code).
package main

import (
	"fmt"
	"log"
	"os"

	"ilp"
)

func main() {
	bench := "yacc" // the paper's least-parallel benchmark
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	base, err := ilp.RunBenchmark(bench, ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on the base machine: %.0f cycles, %d instructions\n\n",
		bench, base.BaseCycles, base.Instructions)
	fmt.Println("degree  superscalar  superpipelined")

	for degree := 1; degree <= 8; degree++ {
		ss, err := ilp.RunBenchmark(bench, ilp.Superscalar(degree), ilp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sp, err := ilp.RunBenchmark(bench, ilp.Superpipelined(degree), ilp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %11.2f  %14.2f\n", degree, ss.SpeedupOver(base), sp.SpeedupOver(base))
	}

	par, err := ilp.Parallelism(bench, 8, ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navailable instruction-level parallelism of %s: %.2f\n", bench, par)
	fmt.Println("(the paper: around 2 for most non-numeric programs — \"these machines already")
	fmt.Println(" exploit all of the instruction-level parallelism available\")")
}
